// Package faas is the serverless platform substrate: a discrete-event
// simulation of an OpenWhisk-like compute node under the memory-pool
// architecture. It owns container lifecycles (cold start → init → execution
// ↔ keep-alive → recycle), per-request page-access replay at page
// granularity, remote-fault latency accounting, keep-alive expiry, and the
// node-level memory bookkeeping every experiment reads.
//
// The platform is policy-agnostic: a policy.Policy attached at construction
// receives lifecycle hooks per container and drives offloading through the
// policy.View interface that *Container implements. The paper's baseline is
// exactly this platform with the NoOffload policy.
package faas

import (
	"math/rand"
	"time"

	"github.com/faasmem/faasmem/internal/cgroup"
	"github.com/faasmem/faasmem/internal/fastswap"
	"github.com/faasmem/faasmem/internal/metrics"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// Config parameterizes a platform instance.
type Config struct {
	// PageSize is the page granularity in bytes. Default 4096.
	PageSize int
	// KeepAliveTimeout is how long an idle container survives. The paper's
	// setup uses 10 minutes (§8.1). Default 10 m.
	KeepAliveTimeout time.Duration
	// Pool configures the remote memory pool and its link. Ignored when the
	// platform is constructed with NewWithPool (rack-shared pool).
	Pool rmem.Config
	// Swap configures the node's swap device (slot capacity, readahead).
	// The artifact's setup uses a 32 GiB swapfile; zero Slots = unlimited.
	Swap fastswap.Config
	// AdaptiveKeepAlive replaces the fixed keep-alive timeout with a
	// per-function adaptive one in the spirit of the hybrid-histogram policy
	// (Shahrad et al., §10 of the paper): once a function has enough reuse
	// observations, its containers idle out after the 99th percentile of
	// observed reuse intervals (with headroom), clamped to
	// [AdaptiveKeepAliveMin, KeepAliveTimeout]. The paper suggests FaaSMem
	// composes with such keep-alive policies for further savings.
	AdaptiveKeepAlive bool
	// AdaptiveKeepAliveMin floors the adaptive timeout. Default 15 s.
	AdaptiveKeepAliveMin time.Duration
	// MaxContainersPerFunction caps how many containers one function may
	// scale out to. Requests beyond the cap queue FIFO and are picked up as
	// containers finish — the congestion that inflates tail latency under
	// surges (Table 1's trace ID-5). Zero means unlimited scale-out.
	MaxContainersPerFunction int
	// Eviction selects which idle container the node reclaims first when
	// NodeMemoryLimit is exceeded. Default EvictLongestIdle.
	Eviction EvictionPolicy
	// NodeMemoryLimit caps the node's local DRAM in bytes. When a charge
	// would exceed it, the platform evicts idle containers (longest-idle
	// first) until the node fits — the real mechanism behind deployment
	// density: a node that offloads more keeps more containers warm within
	// the same DRAM. Zero means unlimited.
	NodeMemoryLimit int64
	// RequestLogSize keeps a ring of the most recent N request records for
	// inspection (gateway, debugging). Zero disables the log.
	RequestLogSize int
	// Telemetry attaches an event tracer and metric registry to the platform
	// and everything it owns: container lifecycles, the pool link, the swap
	// device, and the policy via View.Trace. The zero Hub disables all
	// instrumentation; the disabled path is allocation-free.
	Telemetry telemetry.Hub
	// Spans attaches a causal-span recorder: every completed request then
	// yields a span tree (queue → launch → init → exec with fault-stall /
	// restore / backlog children) for latency attribution, and policies
	// record their background link work through View.Spans. Nil disables
	// span recording; the disabled path is allocation-free.
	Spans *span.Recorder
	// Timeline attaches a time-series recorder: requests, latencies, page
	// traffic, and recovery activity roll up into per-window points on the
	// virtual clock, and the platform arms a per-window gauge sampler
	// (local/remote bytes, live containers, pool occupancy). Nil disables
	// timeline recording; the disabled path is allocation-free.
	Timeline *timeseries.Recorder
	// Exemplars attaches a tail-exemplar recorder: each completed request's
	// span tree is offered to the per-window worst-K cells keyed by
	// (node, tenant), linking timeline spikes back to concrete requests.
	// Works with or without Spans (the span tree is built either way when
	// exemplars are on). Nil disables; the disabled path is allocation-free.
	Exemplars *exemplar.Recorder
	// FetchTimeout bounds how long one request's page fetch may sit in
	// backoff retries against an unhealthy pool link before giving up and
	// recovering (local-swap fallback when the swap device keeps a
	// write-through copy, cold re-init otherwise). Only exercised when the
	// pool has a fault plan injected. Default 500 ms.
	FetchTimeout time.Duration
	// Seed drives all stochastic workload behaviour deterministically.
	Seed int64
	// NodeID names this compute node in pool-side (memnode) accounting.
	// Container IDs repeat across the platforms of a rack-shared pool, so
	// the cluster assigns each node a distinct ID to keep described-page
	// owners unique. Empty is fine for a single-node platform.
	NodeID string
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = pagemem.DefaultPageSize
	}
	if c.KeepAliveTimeout <= 0 {
		c.KeepAliveTimeout = 10 * time.Minute
	}
	if c.AdaptiveKeepAliveMin <= 0 {
		c.AdaptiveKeepAliveMin = 15 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 500 * time.Millisecond
	}
	return c
}

// EvictionPolicy selects the victim when the node memory limit forces an
// idle container out.
type EvictionPolicy int

const (
	// EvictLongestIdle reclaims the container idle the longest (LRU).
	EvictLongestIdle EvictionPolicy = iota
	// EvictGreedyDual reclaims the container with the lowest
	// frequency × cold-start-cost / size priority — the greedy-dual caching
	// view of keep-alive (FaasCache, cited by the paper's §10): cheapness to
	// rebuild and large footprints push a container toward eviction, high
	// reuse frequency protects it.
	EvictGreedyDual
)

// keepAliveFor returns the keep-alive timeout for one of f's containers
// entering idle now.
func (p *Platform) keepAliveFor(f *Function) time.Duration {
	if !p.cfg.AdaptiveKeepAlive {
		return p.cfg.KeepAliveTimeout
	}
	const minSamples = 16
	iv := f.stats.ReusedIntervals
	if len(iv) < minSamples {
		return p.cfg.KeepAliveTimeout
	}
	p99 := trace.ReusedIntervalPercentile(iv, 99)
	// 2x headroom over the observed tail: reuse intervals are censored by
	// cold starts (§8.3.2), so the raw percentile underestimates.
	to := 2 * p99
	if to < p.cfg.AdaptiveKeepAliveMin {
		to = p.cfg.AdaptiveKeepAliveMin
	}
	if to > p.cfg.KeepAliveTimeout {
		to = p.cfg.KeepAliveTimeout
	}
	return to
}

// FunctionStats aggregates per-function observations over a run.
type FunctionStats struct {
	// Latency samples end-to-end request latency (arrival → completion),
	// including cold-start time and remote-fault stalls.
	Latency metrics.Sampler
	// ExecLatency samples execution-only latency (execution start →
	// completion), excluding cold-start and queueing time.
	ExecLatency metrics.Sampler
	// Requests is the number of completed requests.
	Requests int
	// ColdStarts counts requests that launched a new container.
	ColdStarts int
	// WarmStarts counts requests served by an idle container with its full
	// hot set local.
	WarmStarts int
	// SemiWarmStarts counts requests served by an idle container that had
	// offloaded part of its memory (they recall pages on access).
	SemiWarmStarts int
	// FaultPages counts remote page faults across all requests.
	FaultPages int64
	// RuntimeFaultPages counts faults on runtime-segment pages — the
	// "recalls from the Runtime Pucket" of Fig. 8.
	RuntimeFaultPages int64
	// InitFaultPages counts faults on init-segment pages.
	InitFaultPages int64
	// WriteBreakPages counts runtime pages privatized by pool-side
	// copy-on-write unmerge breaks (write-hot workloads against merge
	// domains); WriteBreakRecallPages counts break pages the node could not
	// re-home privately, recalled back to local memory instead.
	WriteBreakPages       int64
	WriteBreakRecallPages int64
	// FetchRetries counts page-fetch attempts retried with backoff against
	// an unhealthy pool (fault injection only).
	FetchRetries int64
	// FetchTimeouts counts requests whose page fetch exhausted its retry
	// budget or FetchTimeout.
	FetchTimeouts int64
	// FallbackPages counts pages served from the local swap copy after a
	// fetch timeout.
	FallbackPages int64
	// ColdReinits counts containers discarded and cold re-initialized
	// because their remote pages stayed unreachable past the timeout.
	ColdReinits int
	// DoneNormal, DoneRescheduled and DoneReinit classify completed
	// requests by recovery path: untouched by faults, routed away from a
	// degraded node by the cluster, or replayed through a cold re-init.
	// They always sum to Requests.
	DoneNormal, DoneRescheduled, DoneReinit int
	// ReusedIntervals collects idle durations at reuse (semi-warm inputs).
	ReusedIntervals []time.Duration
}

// StageHooks attaches workflow state-passing callbacks to one invocation.
// StateIn and StateOut are priced exactly once, at the request's execution
// start (state-out overlaps compute: the stage streams its output region as
// it runs), and their latencies extend the request. Done fires when the
// request completes — the workflow engine's dependency bookkeeping. A
// request that is replayed through a cold re-init carries its hooks to the
// fresh container, so the pricing still happens exactly once, on the
// execution that completes.
type StageHooks struct {
	// StateIn maps the stage's upstream shared-state regions (or prices
	// their local re-derivation); returns added critical-path latency and
	// the bytes moved, for span attribution.
	StateIn func(now simtime.Time) (time.Duration, int64)
	// StateOut produces the stage's output region into the pool (or prices
	// local/storage hand-off); returns added latency and bytes moved.
	StateOut func(now simtime.Time) (time.Duration, int64)
	// Done observes the request's completion time.
	Done func(e *simtime.Engine, finished simtime.Time)
}

// queuedReq is one request waiting behind the scale-out cap.
type queuedReq struct {
	at    simtime.Time
	hooks *StageHooks
}

// Function is a registered function with its container fleet.
type Function struct {
	id      string
	profile *workload.Profile
	idle    []*Container // LIFO: most recently idled last
	live    int
	stats   FunctionStats
	// queue holds requests waiting for a container when the scale-out cap
	// is reached.
	queue []queuedReq
}

// QueuedRequests returns the number of requests waiting for a container.
func (f *Function) QueuedRequests() int { return len(f.queue) }

// ID returns the function identifier.
func (f *Function) ID() string { return f.id }

// Profile returns the function's workload profile.
func (f *Function) Profile() *workload.Profile { return f.profile }

// Stats exposes the accumulated statistics.
func (f *Function) Stats() *FunctionStats { return &f.stats }

// LiveContainers returns the number of containers currently alive.
func (f *Function) LiveContainers() int { return f.live }

// IdleContainer returns the most recently idled container, or nil if none is
// idle — useful for inspecting memory state in experiments and tests.
func (f *Function) IdleContainer() *Container {
	if len(f.idle) == 0 {
		return nil
	}
	return f.idle[len(f.idle)-1]
}

// Platform is one compute node attached to a remote memory pool.
type Platform struct {
	engine *simtime.Engine
	cfg    Config
	pool   *rmem.Pool
	pol    policy.Policy
	rng    *rand.Rand

	fns     map[string]*Function
	fnOrder []string

	nodeCG     *cgroup.Group
	liveTW     *metrics.TimeWeighted
	governor   *rmem.Governor
	swap       *fastswap.Device
	reqLog     RequestLog
	tel        telemetry.Hub
	spans      *span.Recorder
	tl         *timeseries.Recorder
	exm        *exemplar.Recorder
	tlNode     string
	met        platformMetrics
	containers int // ever created
	liveTotal  int
	evicted    int
}

// New creates a platform over engine with the given configuration and
// offloading policy, with a dedicated memory pool.
func New(engine *simtime.Engine, cfg Config, pol policy.Policy) *Platform {
	return NewWithPool(engine, cfg, pol, rmem.NewPool(cfg.Pool))
}

// NewWithPool creates a platform that offloads to an externally owned pool —
// the rack-level deployment of §9, where ~10 compute nodes share one memory
// node.
func NewWithPool(engine *simtime.Engine, cfg Config, pol policy.Policy, pool *rmem.Pool) *Platform {
	c := cfg.withDefaults()
	p := &Platform{
		engine:   engine,
		cfg:      c,
		pool:     pool,
		pol:      pol,
		rng:      rand.New(rand.NewSource(c.Seed)),
		fns:      make(map[string]*Function),
		nodeCG:   cgroup.New("node", engine.Now()),
		liveTW:   metrics.NewTimeWeighted(engine.Now(), 0),
		governor: rmem.NewGovernor(pool, 0.7),
		swap:     fastswap.NewDevice(c.Swap),
		tel:      c.Telemetry,
		spans:    c.Spans,
		tl:       c.Timeline,
		exm:      c.Exemplars,
	}
	p.met = newPlatformMetrics(p.tel.Reg)
	pool.Instrument(p.tel.Tracer, p.tel.Reg)
	p.swap.Instrument(p.tel.Reg)
	p.reqLog.SetCapacity(c.RequestLogSize)
	p.armTimeline()
	return p
}

// Engine returns the simulation engine driving the platform.
func (p *Platform) Engine() *simtime.Engine { return p.engine }

// Pool returns the attached remote memory pool.
func (p *Platform) Pool() *rmem.Pool { return p.pool }

// Swap returns the node's swap device.
func (p *Platform) Swap() *fastswap.Device { return p.swap }

// Config returns the effective configuration.
func (p *Platform) Config() Config { return p.cfg }

// PolicyName names the active offloading policy.
func (p *Platform) PolicyName() string { return p.pol.Name() }

// Register adds a function backed by the given profile. Registering the same
// ID twice panics: it would silently split statistics.
func (p *Platform) Register(id string, prof *workload.Profile) *Function {
	if _, dup := p.fns[id]; dup {
		panic("faas: duplicate function " + id)
	}
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	f := &Function{id: id, profile: prof}
	p.fns[id] = f
	p.fnOrder = append(p.fnOrder, id)
	return f
}

// Function returns the registered function with the given ID, or nil.
func (p *Platform) Function(id string) *Function { return p.fns[id] }

// Functions lists registered functions in registration order.
func (p *Platform) Functions() []*Function {
	out := make([]*Function, 0, len(p.fnOrder))
	for _, id := range p.fnOrder {
		out = append(out, p.fns[id])
	}
	return out
}

// Invoke fires one request for the function at the current virtual time.
func (p *Platform) Invoke(fnID string) {
	f := p.fns[fnID]
	if f == nil {
		panic("faas: invoke of unregistered function " + fnID)
	}
	p.dispatch(f, p.engine.Now(), false, nil)
}

// InvokeRescheduled is Invoke for a request the cluster routed away from a
// fault-degraded node; its completion is counted separately so resilience
// experiments can prove no invocation was silently lost.
func (p *Platform) InvokeRescheduled(fnID string) {
	f := p.fns[fnID]
	if f == nil {
		panic("faas: invoke of unregistered function " + fnID)
	}
	p.dispatch(f, p.engine.Now(), true, nil)
}

// InvokeStage fires one workflow-stage request carrying state-passing
// hooks. Apart from the hooks the request is an ordinary invocation: it
// reuses idle containers, queues behind the scale-out cap, and rides the
// fault-recovery machinery.
func (p *Platform) InvokeStage(fnID string, hooks *StageHooks) {
	f := p.fns[fnID]
	if f == nil {
		panic("faas: invoke of unregistered function " + fnID)
	}
	p.dispatch(f, p.engine.Now(), false, hooks)
}

// InvokeStageRescheduled is InvokeStage for a stage request the cluster
// routed away from a fault-degraded node.
func (p *Platform) InvokeStageRescheduled(fnID string, hooks *StageHooks) {
	f := p.fns[fnID]
	if f == nil {
		panic("faas: invoke of unregistered function " + fnID)
	}
	p.dispatch(f, p.engine.Now(), true, hooks)
}

// ScheduleInvocations schedules a whole invocation timeline for a function.
func (p *Platform) ScheduleInvocations(fnID string, times []simtime.Time) {
	f := p.fns[fnID]
	if f == nil {
		panic("faas: schedule for unregistered function " + fnID)
	}
	for _, at := range times {
		at := at
		p.engine.At(at, func(*simtime.Engine) { p.dispatch(f, at, false, nil) })
	}
}

// ReplayTrace registers every function of tr under the given profile mapping
// and schedules all invocations. The mapping receives the trace-function
// index and returns the profile to use (experiments typically round-robin
// the 11 benchmarks).
func (p *Platform) ReplayTrace(tr *trace.Trace, pick func(i int, f *trace.Function) *workload.Profile) {
	for i, tf := range tr.Functions {
		prof := pick(i, tf)
		if prof == nil {
			continue
		}
		p.Register(tf.ID, prof)
		p.ScheduleInvocations(tf.ID, tf.Invocations)
	}
}

// dispatch routes one request: reuse the most recently idled container, or
// cold-start a new one. resched marks a request the cluster redirected away
// from a fault-degraded node; hooks carries workflow state-passing
// callbacks (nil for plain invocations).
func (p *Platform) dispatch(f *Function, arrival simtime.Time, resched bool, hooks *StageHooks) {
	now := p.engine.Now()
	if n := len(f.idle); n > 0 {
		c := f.idle[n-1]
		f.idle = f.idle[:n-1]
		idleFor := now - c.idleSince
		f.stats.ReusedIntervals = append(f.stats.ReusedIntervals, idleFor)
		if sw, ok := c.pol.(policy.SemiWarmer); ok && sw.InSemiWarm() {
			f.stats.SemiWarmStarts++
			c.curKind = SemiWarmStart
			p.met.semiWarmStarts.Inc()
		} else {
			f.stats.WarmStarts++
			c.curKind = WarmStart
			p.met.warmStarts.Inc()
		}
		c.curResched = resched
		c.curHooks = hooks
		c.wake()
		c.execute(arrival)
		return
	}
	if p.cfg.MaxContainersPerFunction > 0 && f.live >= p.cfg.MaxContainersPerFunction {
		// At the scale-out cap with every container busy: queue FIFO.
		f.queue = append(f.queue, queuedReq{at: arrival, hooks: hooks})
		p.met.queuedReqs.Inc()
		p.tel.Tracer.Record(telemetry.Event{
			At: now, Kind: telemetry.KindRequestQueued, Actor: "node", Fn: f.id,
			Value: int64(len(f.queue)),
		})
		return
	}
	f.stats.ColdStarts++
	p.met.coldStarts.Inc()
	c := p.launch(f)
	c.curKind = ColdStart
	c.curResched = resched
	c.curHooks = hooks
	// Cold start: the runtime loads, then the function initializes, then the
	// pending request executes.
	p.engine.After(f.profile.LaunchTime, func(e *simtime.Engine) {
		c.runtimeLoaded(e.Now())
		e.After(f.profile.InitTime, func(e *simtime.Engine) {
			c.initDone(e.Now())
			c.execute(arrival)
		})
	})
}

// NodeCgroup returns the node-level memory control group; container groups
// are its children, so it aggregates the whole node.
func (p *Platform) NodeCgroup() *cgroup.Group { return p.nodeCG }

// NodeLocalBytes returns the node's current local memory consumption across
// all containers.
func (p *Platform) NodeLocalBytes() int64 { return p.nodeCG.LocalBytes() }

// NodeLocalAvg returns the time-weighted average node-local memory in bytes.
func (p *Platform) NodeLocalAvg() float64 { return p.nodeCG.AvgLocalBytes(p.engine.Now()) }

// NodeLocalPeak returns the peak node-local memory in bytes.
func (p *Platform) NodeLocalPeak() int64 { return p.nodeCG.PeakLocalBytes() }

// NodeRemoteBytes returns current remote residency across all containers.
func (p *Platform) NodeRemoteBytes() int64 { return p.nodeCG.RemoteBytes() }

// NodeRemoteAvg returns the time-weighted average remote residency in bytes.
func (p *Platform) NodeRemoteAvg() float64 { return p.nodeCG.AvgRemoteBytes(p.engine.Now()) }

// LiveContainers returns the number of containers currently alive on the
// node.
func (p *Platform) LiveContainers() int { return p.liveTotal }

// LiveContainersAvg returns the time-weighted average number of live
// containers — the denominator of the per-container density accounting
// (§8.6).
func (p *Platform) LiveContainersAvg() float64 { return p.liveTW.Average(p.engine.Now()) }

// ContainersCreated returns how many containers were ever launched.
func (p *Platform) ContainersCreated() int { return p.containers }

// RequestLog exposes the platform's recent-request ring (enabled via
// Config.RequestLogSize).
func (p *Platform) RequestLog() *RequestLog { return &p.reqLog }

// SpanRecorder exposes the platform's causal-span recorder (nil when span
// recording is disabled).
func (p *Platform) SpanRecorder() *span.Recorder { return p.spans }

// ExemplarRecorder returns the attached tail-exemplar recorder (nil when
// exemplars are disabled).
func (p *Platform) ExemplarRecorder() *exemplar.Recorder { return p.exm }

// EvictedContainers counts idle containers force-recycled to keep the node
// within its memory limit.
func (p *Platform) EvictedContainers() int { return p.evicted }

// enforceMemoryLimit evicts longest-idle containers until the node fits its
// DRAM limit. Busy containers are never evicted; if everything is busy the
// node runs over-committed, as a real node would swap or OOM-throttle.
func (p *Platform) enforceMemoryLimit(now simtime.Time) {
	limit := p.cfg.NodeMemoryLimit
	if limit <= 0 {
		return
	}
	for p.NodeLocalBytes() > limit {
		var victim *Container
		var victimScore float64
		for _, f := range p.Functions() {
			for _, c := range f.idle {
				switch p.cfg.Eviction {
				case EvictGreedyDual:
					score := c.greedyDualPriority()
					if victim == nil || score < victimScore {
						victim, victimScore = c, score
					}
				default:
					if victim == nil || c.idleSince < victim.idleSince {
						victim = c
					}
				}
			}
		}
		if victim == nil {
			return // nothing idle to reclaim
		}
		p.evicted++
		p.met.evictions.Inc()
		p.tel.Tracer.Record(telemetry.Event{
			At: now, Kind: telemetry.KindContainerEvict,
			Actor: victim.id, Fn: victim.fn.id,
			Value: victim.space.LocalBytes(),
		})
		victim.recycle()
	}
}

func (p *Platform) addLive(now simtime.Time, delta int) {
	p.liveTW.Add(now, float64(delta))
}

// AggregateStats sums request statistics across every function on the node.
type AggregateStats struct {
	// Requests, ColdStarts, WarmStarts, SemiWarmStarts count request paths.
	Requests, ColdStarts, WarmStarts, SemiWarmStarts int
	// FaultPages counts remote page faults.
	FaultPages int64
	// WorstP95 is the highest per-function P95 latency in seconds.
	WorstP95 float64
}

// ColdStartRatio is the fraction of requests that cold-started.
func (a AggregateStats) ColdStartRatio() float64 {
	if a.Requests == 0 {
		return 0
	}
	return float64(a.ColdStarts) / float64(a.Requests)
}

// RecoveryStats aggregates the fault-recovery machinery's outcomes across
// the node. All fields are zero on a run without an injected fault plan.
type RecoveryStats struct {
	// FetchRetries counts backoff retries of failed page fetches.
	FetchRetries int64 `json:"fetch_retries"`
	// FetchTimeouts counts fetches abandoned after retries/timeout.
	FetchTimeouts int64 `json:"fetch_timeouts"`
	// FallbackPages counts pages served from the local swap copy.
	FallbackPages int64 `json:"fallback_pages"`
	// ColdReinits counts containers cold re-initialized after a timeout.
	ColdReinits int `json:"cold_reinits"`
	// DoneNormal/DoneRescheduled/DoneReinit classify completed requests by
	// recovery path; they sum to the node's completed request count.
	DoneNormal      int `json:"done_normal"`
	DoneRescheduled int `json:"done_rescheduled"`
	DoneReinit      int `json:"done_reinit"`
}

// Add accumulates other into r (cluster-level summing).
func (r *RecoveryStats) Add(other RecoveryStats) {
	r.FetchRetries += other.FetchRetries
	r.FetchTimeouts += other.FetchTimeouts
	r.FallbackPages += other.FallbackPages
	r.ColdReinits += other.ColdReinits
	r.DoneNormal += other.DoneNormal
	r.DoneRescheduled += other.DoneRescheduled
	r.DoneReinit += other.DoneReinit
}

// Recovery sums the fault-recovery statistics across every function.
func (p *Platform) Recovery() RecoveryStats {
	var r RecoveryStats
	for _, f := range p.Functions() {
		st := f.Stats()
		r.FetchRetries += st.FetchRetries
		r.FetchTimeouts += st.FetchTimeouts
		r.FallbackPages += st.FallbackPages
		r.ColdReinits += st.ColdReinits
		r.DoneNormal += st.DoneNormal
		r.DoneRescheduled += st.DoneRescheduled
		r.DoneReinit += st.DoneReinit
	}
	return r
}

// Aggregate sums per-function statistics across the node.
func (p *Platform) Aggregate() AggregateStats {
	var a AggregateStats
	for _, f := range p.Functions() {
		st := f.Stats()
		a.Requests += st.Requests
		a.ColdStarts += st.ColdStarts
		a.WarmStarts += st.WarmStarts
		a.SemiWarmStarts += st.SemiWarmStarts
		a.FaultPages += st.FaultPages
		if p95 := st.Latency.P95(); p95 > a.WorstP95 {
			a.WorstP95 = p95
		}
	}
	return a
}
