package faas

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/workload"
)

// This file is the container side of the fault-recovery state machine. It is
// only entered when the pool has a fault plan injected (Pool.FaultsPlanned);
// Container.execute dispatches here before touching any state, so the
// fault-free request path is untouched by this machinery.
//
// The request flow under a fault plan:
//
//	countSpans (pure pre-count of the remote set)
//	  → Pool.FetchRetry (bounded backoff against the plan)
//	      success → touchSpans replay + normal fault accounting
//	      timeout → recoverFetch:
//	          swap fallback enabled → serve pages from the local copy
//	          otherwise            → recycle + cold re-init, replay request
//
// The pre-count exists because touchSpans mutates page state (Remote→Hot) as
// it walks; fetching only after a successful FetchRetry keeps a timed-out
// request's container consistent for the fallback and re-init paths.

// countSpans is touchSpans without the mutation: it walks the same byte
// spans and counts the demand faults and readahead pulls the walk would
// perform. flipped carries pages the walk would have recalled already, so
// revisits within one request count exactly like the mutating walk.
func (c *Container) countSpans(seg pagemem.Range, spans []workload.Span, flipped map[pagemem.PageID]struct{}) (faults, readahead int) {
	ps := int64(c.space.PageSize())
	window := c.p.swap.Readahead()
	remote := func(id pagemem.PageID) bool {
		if _, ok := flipped[id]; ok {
			return false
		}
		return c.space.State(id) == pagemem.Remote
	}
	for _, sp := range spans {
		start := seg.Start + pagemem.PageID(sp.Start/ps)
		end := seg.Start + pagemem.PageID((sp.End+ps-1)/ps)
		if end > seg.End {
			end = seg.End
		}
		for id := start; id < end; id++ {
			if !remote(id) {
				continue
			}
			faults++
			flipped[id] = struct{}{}
			for ra := 0; ra < window; ra++ {
				next := id + 1 + pagemem.PageID(ra)
				if next >= seg.End || !remote(next) {
					break
				}
				readahead++
				flipped[next] = struct{}{}
			}
		}
	}
	return faults, readahead
}

// executeFaulty is Container.execute for a fault-injected pool. It mirrors
// the fault-free path exactly on success (same RNG draws, same accounting
// order) and diverts to recoverFetch when the fetch times out.
func (c *Container) executeFaulty(arrival simtime.Time) {
	e := c.p.engine
	now := e.Now()
	c.started = now
	prof := c.fn.profile

	c.space.ReuseRange(c.execRange)
	execBytes := c.space.BytesOf(c.execRange.Len())
	c.cg.Charge(now, execBytes)
	c.p.enforceMemoryLimit(now)

	c.pol.RequestStart(e)

	touches := prof.RequestTouches(c.rng)
	flipped := make(map[pagemem.PageID]struct{})
	runtimeFaults, runtimeRA := c.countSpans(c.runtimeRange, touches.Runtime, flipped)
	initFaults, initRA := c.countSpans(c.initRange, touches.Init, flipped)
	faults := runtimeFaults + initFaults
	readahead := runtimeRA + initRA

	var faultLat time.Duration
	var stall rmem.FaultStall
	if faults+readahead > 0 {
		pageBytes := int64(c.space.PageSize())
		var fc rmem.ClassCounts
		fc[memnode.ClassRuntime] = runtimeFaults
		fc[memnode.ClassInit] = initFaults
		var err error
		stall, err = c.p.pool.FetchRetry(now, c.owner, c.fn.id, fc, pageBytes, c.p.cfg.FetchTimeout)
		if err != nil {
			c.recoverFetch(arrival, touches, stall)
			return
		}
		c.fn.stats.FetchRetries += int64(stall.Retries)

		// Fetch succeeded: replay the walk with mutation. The replay must
		// reproduce the pre-count — anything else means the fetch was paid
		// for the wrong page set.
		mrf, mrra := c.touchSpans(c.runtimeRange, touches.Runtime)
		mif, mira := c.touchSpans(c.initRange, touches.Init)
		if mrf != runtimeFaults || mif != initFaults || mrra+mira != readahead {
			panic(fmt.Sprintf("faas: fault pre-count (%d/%d faults, %d ra) diverged from replay (%d/%d, %d)",
				runtimeFaults, initFaults, readahead, mrf, mif, mrra+mira))
		}
		c.touchSpans(c.execRange, []workload.Span{{Start: 0, End: execBytes}})

		faultLat = stall.Total
		if readahead > 0 {
			var ra rmem.ClassCounts
			ra[memnode.ClassRuntime] = runtimeRA
			ra[memnode.ClassInit] = initRA
			c.p.pool.RecallDescribed(now, c.owner, c.fn.id, ra, pageBytes)
			c.p.swap.NoteClusterRead(readahead)
		}
		recalled := int64(faults+readahead) * pageBytes
		c.cg.Recall(now, recalled)
		c.p.syncMemGauges()
		c.p.enforceMemoryLimit(now)
		c.p.swap.Release(faults + readahead)
		c.fn.stats.FaultPages += int64(faults)
		c.p.met.faultPages.Add(int64(faults))
		c.p.met.readaheadPages.Add(int64(readahead))
		if runtimeFaults+runtimeRA > 0 {
			c.p.tel.Tracer.Record(telemetry.Event{
				At: now, Dur: faultLat, Kind: telemetry.KindPageFault,
				Actor: c.id, Fn: c.fn.id, Stage: telemetry.StageRuntime,
				Value: int64(runtimeFaults), Aux: int64(runtimeRA),
			})
		}
		if initFaults+initRA > 0 {
			c.p.tel.Tracer.Record(telemetry.Event{
				At: now, Dur: faultLat, Kind: telemetry.KindPageFault,
				Actor: c.id, Fn: c.fn.id, Stage: telemetry.StageInit,
				Value: int64(initFaults), Aux: int64(initRA),
			})
		}
	} else {
		// Nothing remote: walk with mutation straight away (promotions and
		// accessed bits still happen), no pool interaction.
		c.touchSpans(c.runtimeRange, touches.Runtime)
		c.touchSpans(c.initRange, touches.Init)
		c.touchSpans(c.execRange, []workload.Span{{Start: 0, End: execBytes}})
	}
	c.fn.stats.RuntimeFaultPages += int64(runtimeFaults)
	c.fn.stats.InitFaultPages += int64(initFaults)

	c.curFaults = faults
	c.curRA = readahead
	c.curStall = faultLat
	c.curQueueing = stall.Queueing
	c.curBacklogBytes = stall.BacklogBytes
	// += rather than =: a re-init replay carries the original request's
	// backoff on the fresh container, and finishRequest resets it.
	c.curRetryWait += stall.Backoff
	c.curFallbackLat = 0
	stateLat := c.priceStateHooks(now)
	latency := prof.ExecTime + faultLat + stateLat
	if faultLat > 0 {
		c.psi.AddStall(now+simtime.Time(latency), faultLat)
	}

	e.After(latency, func(e *simtime.Engine) {
		c.finishRequest(arrival)
	})
}

// recoverFetch handles a fetch that timed out against an unhealthy pool:
// either serve the remote set from the local write-through swap copy, or
// discard the container and replay the request through a cold re-init.
// stall carries the backoff already spent (stall.Backoff) — wall time the
// request has lost either way.
func (c *Container) recoverFetch(arrival simtime.Time, touches workload.Touches, stall rmem.FaultStall) {
	e := c.p.engine
	now := e.Now()
	c.fn.stats.FetchRetries += int64(stall.Retries)
	c.fn.stats.FetchTimeouts++

	if c.p.swap.FallbackEnabled() {
		// Dual-backend swap: every offloaded page also has a local disk
		// copy, so the walk can proceed — faults are served locally at the
		// fallback read latency and the pool ledger is released without
		// wire traffic.
		pageBytes := int64(c.space.PageSize())
		runtimeFaults, runtimeRA := c.touchSpans(c.runtimeRange, touches.Runtime)
		initFaults, initRA := c.touchSpans(c.initRange, touches.Init)
		execBytes := c.space.BytesOf(c.execRange.Len())
		c.touchSpans(c.execRange, []workload.Span{{Start: 0, End: execBytes}})
		faults := runtimeFaults + initFaults
		readahead := runtimeRA + initRA
		pages := faults + readahead
		fbLat := c.p.swap.FallbackRead(pages)
		var all rmem.ClassCounts
		all[memnode.ClassRuntime] = runtimeFaults + runtimeRA
		all[memnode.ClassInit] = initFaults + initRA
		c.p.pool.RecallLocal(now, c.owner, c.fn.id, all, pageBytes)
		c.cg.Recall(now, int64(pages)*pageBytes)
		c.p.syncMemGauges()
		c.p.enforceMemoryLimit(now)
		c.p.swap.Release(pages)
		c.fn.stats.FaultPages += int64(faults)
		c.fn.stats.RuntimeFaultPages += int64(runtimeFaults)
		c.fn.stats.InitFaultPages += int64(initFaults)
		c.fn.stats.FallbackPages += int64(pages)
		c.p.met.faultPages.Add(int64(faults))
		c.p.met.fallbackPages.Add(int64(pages))
		c.p.tel.Tracer.Record(telemetry.Event{
			At: now, Dur: stall.Backoff + fbLat, Kind: telemetry.KindLocalFallback,
			Actor: c.id, Fn: c.fn.id, Value: int64(pages),
		})
		if c.p.tl.Enabled() {
			c.p.tl.AddCounter(now, timeseries.SeriesFallbackPages,
				timeseries.Dims{Node: c.p.tlNode, Tenant: c.fn.id}, int64(pages))
		}
		c.curFaults = faults
		c.curRA = readahead
		c.curStall = stall.Backoff + fbLat
		c.curQueueing = 0
		c.curBacklogBytes = 0
		c.curRetryWait = stall.Backoff
		c.curFallbackLat = fbLat
		stateLat := c.priceStateHooks(now)
		latency := c.fn.profile.ExecTime + c.curStall + stateLat
		if c.curStall > 0 {
			c.psi.AddStall(now+simtime.Time(latency), c.curStall)
		}
		e.After(latency, func(e *simtime.Engine) {
			c.finishRequest(arrival)
		})
		return
	}

	// No local copy: the pages are unreachable. Discard the container and
	// cold re-initialize — the fresh container has everything local, and
	// offload stays paused while the link is unhealthy, so the replayed
	// request cannot re-enter this path for the same outage.
	f := c.fn
	resched := c.curResched
	hooks := c.curHooks
	waited := stall.Backoff
	f.stats.ColdReinits++
	c.p.met.coldReinits.Inc()
	c.p.tel.Tracer.Record(telemetry.Event{
		At: now, Dur: waited, Kind: telemetry.KindColdReinit,
		Actor: c.id, Fn: c.fn.id, Value: int64(stall.Retries),
	})
	if c.p.tl.Enabled() {
		c.p.tl.AddCounter(now, timeseries.SeriesColdReinits,
			timeseries.Dims{Node: c.p.tlNode, Tenant: c.fn.id}, 1)
	}
	c.recycle()

	relaunch := func(e *simtime.Engine) {
		f.stats.ColdStarts++
		c.p.met.coldStarts.Inc()
		nc := c.p.launch(f)
		nc.curKind = ColdStart
		nc.curResched = resched
		nc.curReinit = true
		nc.curRetryWait = waited
		// The replayed request keeps its workflow hooks: state passing is
		// priced on the execution that completes, exactly once.
		nc.curHooks = hooks
		e.After(f.profile.LaunchTime, func(e *simtime.Engine) {
			nc.runtimeLoaded(e.Now())
			e.After(f.profile.InitTime, func(e *simtime.Engine) {
				nc.initDone(e.Now())
				nc.execute(arrival)
			})
		})
	}
	if waited > 0 {
		e.After(waited, relaunch)
	} else {
		relaunch(e)
	}
}
