package faas

import (
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// StartKind labels how a request found its container.
type StartKind int

const (
	// ColdStart launched a fresh container (runtime + init on the critical
	// path).
	ColdStart StartKind = iota
	// WarmStart reused an idle container with its hot set local.
	WarmStart
	// SemiWarmStart reused a container that was in its semi-warm period
	// (some hot pages remote, recalled on access).
	SemiWarmStart
	// QueuedStart waited for a busy container under a scale-out cap.
	QueuedStart
)

// String implements fmt.Stringer.
func (k StartKind) String() string {
	switch k {
	case ColdStart:
		return "cold"
	case WarmStart:
		return "warm"
	case SemiWarmStart:
		return "semi-warm"
	case QueuedStart:
		return "queued"
	default:
		return "unknown"
	}
}

// RequestRecord traces one request end to end.
type RequestRecord struct {
	// Function and Container identify where the request ran.
	Function  string `json:"function"`
	Container string `json:"container"`
	// Kind is the start path.
	Kind StartKind `json:"kind"`
	// Arrival and Start are virtual times; Start excludes cold-start work.
	Arrival simtime.Time `json:"arrival"`
	Start   simtime.Time `json:"start"`
	// Latency is end-to-end (arrival → completion); ExecLatency is
	// start → completion.
	Latency     time.Duration `json:"latency"`
	ExecLatency time.Duration `json:"exec_latency"`
	// FaultPages counts remote pages demand-faulted during execution.
	FaultPages int `json:"fault_pages"`
	// StallTime is the latency share spent waiting on remote memory.
	StallTime time.Duration `json:"stall_time"`
}

// RequestLog is a bounded ring of recent request records. The zero value is
// disabled; enable with SetCapacity or the platform's Config.RequestLogSize.
type RequestLog struct {
	buf  []RequestRecord
	next int
	full bool
}

// SetCapacity sizes the ring (dropping existing records). Zero disables.
func (l *RequestLog) SetCapacity(n int) {
	if n <= 0 {
		l.buf = nil
	} else {
		l.buf = make([]RequestRecord, n)
	}
	l.next = 0
	l.full = false
}

// Enabled reports whether records are being kept.
func (l *RequestLog) Enabled() bool { return len(l.buf) > 0 }

// Add appends a record, evicting the oldest when full.
func (l *RequestLog) Add(r RequestRecord) {
	if len(l.buf) == 0 {
		return
	}
	l.buf[l.next] = r
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

// Len returns the number of stored records.
func (l *RequestLog) Len() int {
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Records returns stored records oldest-first.
func (l *RequestLog) Records() []RequestRecord {
	n := l.Len()
	out := make([]RequestRecord, 0, n)
	if l.full {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}
