package faas

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/span"
)

// reconcile asserts the invariant the attribution tables rest on: an
// invocation's per-phase critical-path times sum to its end-to-end latency
// exactly.
func reconcileSpan(t *testing.T, inv span.Invocation) {
	t.Helper()
	cp := span.CriticalPath(inv)
	var sum time.Duration
	for _, d := range cp {
		sum += d
	}
	if sum != inv.Total() {
		t.Fatalf("%s on %s (%v): phase sum %v != total %v",
			inv.Function, inv.Container, inv.Kind, sum, inv.Total())
	}
}

// TestSpanTreesReconcileWithRequestLog drives a platform through cold, warm
// and queued starts and checks every recorded span tree against the request
// log: same count, same end-to-end latency, phases summing exactly.
func TestSpanTreesReconcileWithRequestLog(t *testing.T) {
	e := simtime.NewEngine()
	rec := span.NewRecorder(128)
	p := New(e, Config{
		KeepAliveTimeout:         10 * time.Second,
		MaxContainersPerFunction: 1,
		RequestLogSize:           128,
		Spans:                    rec,
		Seed:                     1,
	}, policy.NoOffload{})
	p.Register("f", tinyProfile())
	// 0: cold start. 50ms: queued behind the cold start (cap 1).
	// 2s: warm reuse.
	p.ScheduleInvocations("f", []simtime.Time{0, 50 * time.Millisecond, 2 * time.Second})
	e.Run()

	invs := rec.Invocations()
	recs := p.RequestLog().Records()
	if len(invs) != 3 || len(recs) != 3 {
		t.Fatalf("got %d spans / %d log records, want 3/3", len(invs), len(recs))
	}
	wantKinds := []span.StartKind{span.Cold, span.Queued, span.Warm}
	for i, inv := range invs {
		reconcileSpan(t, inv)
		if inv.Kind != wantKinds[i] {
			t.Fatalf("inv %d kind = %v, want %v", i, inv.Kind, wantKinds[i])
		}
		if inv.Root.Start != recs[i].Arrival || inv.Total() != recs[i].Latency {
			t.Fatalf("inv %d [%v, %v] disagrees with log record [%v, %v]",
				i, inv.Root.Start, inv.Total(), recs[i].Arrival, recs[i].Latency)
		}
	}
	// Cold tree: launch + init + exec children covering the root end to end.
	cold := invs[0]
	if len(cold.Root.Children) != 3 ||
		cold.Root.Children[0].Phase != span.PhaseLaunch ||
		cold.Root.Children[1].Phase != span.PhaseInit ||
		cold.Root.Children[2].Phase != span.PhaseExec {
		t.Fatalf("cold tree children = %+v", cold.Root.Children)
	}
	cp := span.CriticalPath(cold)
	if cp[span.PhaseLaunch] != 300*time.Millisecond ||
		cp[span.PhaseInit] != 200*time.Millisecond ||
		cp[span.PhaseExec] != 100*time.Millisecond {
		t.Fatalf("cold breakdown = %v", cp)
	}
	// Queued tree: the wait for the busy container is its own phase.
	queued := invs[1]
	qcp := span.CriticalPath(queued)
	if qcp[span.PhaseQueue] != queued.Total()-100*time.Millisecond {
		t.Fatalf("queue time = %v of total %v", qcp[span.PhaseQueue], queued.Total())
	}
}

// TestSpanStallChildren runs FaaSMem with an aggressive semi-warm so reuse
// faults remote pages, and checks the stall appears as a restore child with
// pages attached.
func TestSpanStallChildren(t *testing.T) {
	e := simtime.NewEngine()
	rec := span.NewRecorder(128)
	pol := core.New(core.Config{
		FallbackSemiWarmDelay: 500 * time.Millisecond,
	})
	p := New(e, Config{
		KeepAliveTimeout: time.Minute,
		Spans:            rec,
		Seed:             1,
	}, pol)
	p.Register("f", tinyProfile())
	// Cold at 0, then reuse long after the semi-warm drain started.
	p.ScheduleInvocations("f", []simtime.Time{0, 30 * time.Second})
	e.Run()

	invs := rec.Invocations()
	if len(invs) != 2 {
		t.Fatalf("got %d invocations, want 2", len(invs))
	}
	reuse := invs[1]
	reconcileSpan(t, reuse)
	if reuse.Kind != span.SemiWarm {
		t.Fatalf("reuse kind = %v, want semi-warm", reuse.Kind)
	}
	cp := span.CriticalPath(reuse)
	if cp[span.PhaseRestore] <= 0 {
		t.Fatalf("semi-warm reuse must carry a restore stall, breakdown = %v", cp)
	}
	var stallPages int64
	var findStall func(s span.Span)
	findStall = func(s span.Span) {
		if s.Phase == span.PhaseRestore {
			stallPages = s.Pages
		}
		for _, c := range s.Children {
			findStall(c)
		}
	}
	findStall(reuse.Root)
	if stallPages <= 0 {
		t.Fatalf("restore span must carry faulted pages, tree = %+v", reuse.Root)
	}
	// The drain itself must have produced offload background spans, and the
	// reuse a completed semi-warm background span.
	var offloads, semis int
	for _, bg := range rec.Backgrounds() {
		switch bg.Kind {
		case span.BGOffload:
			offloads++
		case span.BGSemiWarm:
			semis++
		}
	}
	if offloads == 0 || semis == 0 {
		t.Fatalf("backgrounds: offloads=%d semis=%d, want both > 0", offloads, semis)
	}
}

// TestSpansDisabledMatchesEnabledLatency pins the observer-effect contract:
// recording spans must not change simulation outcomes.
func TestSpansDisabledMatchesEnabledLatency(t *testing.T) {
	run := func(rec *span.Recorder) []RequestRecord {
		e := simtime.NewEngine()
		p := New(e, Config{
			KeepAliveTimeout: 10 * time.Second,
			RequestLogSize:   64,
			Spans:            rec,
			Seed:             7,
		}, policy.NoOffload{})
		p.Register("f", tinyProfile())
		p.ScheduleInvocations("f", []simtime.Time{0, time.Second, 2 * time.Second})
		e.Run()
		return p.RequestLog().Records()
	}
	off := run(nil)
	on := run(span.NewRecorder(64))
	if len(off) != len(on) {
		t.Fatalf("record counts differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("record %d differs with spans on: %+v vs %+v", i, off[i], on[i])
		}
	}
}
