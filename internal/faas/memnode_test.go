package faas

import (
	"math/rand"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// TestMemNodeLedgerInvariants runs a platform on a memnode-backed pool with
// tiers small enough to force compression and spill, and checks at every
// virtual second that (a) the node's internal invariants hold and (b) the
// pool's byte ledger equals the node's logical bytes — i.e. logical bytes
// always equal the sum of the containers' outstanding offloads.
func TestMemNodeLedgerInvariants(t *testing.T) {
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout: 5 * time.Second,
		NodeID:           "n0",
		Pool: rmem.Config{Node: &memnode.Config{
			DRAMBytes:  1 * workload.MB,
			SpillBytes: 8 * workload.MB,
		}},
		Seed: 1,
	}, offloadAllPolicy{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{
		0, 10 * time.Millisecond, // scale-out: two containers, dedup fan-in
		2 * time.Second, 10 * time.Second, // warm reuses that fault pages back
	})
	for i := 1; i <= 30; i++ {
		e.At(simtime.Time(i)*simtime.Time(time.Second), func(_ *simtime.Engine) {
			node := p.Pool().Node()
			if err := node.CheckInvariants(); err != nil {
				t.Fatalf("t=%ds: %v", i, err)
			}
			if got, want := p.Pool().Used(), node.Stats().LogicalBytes; got != want {
				t.Fatalf("t=%ds: pool ledger %d != node logical %d", i, got, want)
			}
		})
	}
	e.Run()

	node := p.Pool().Node()
	st := node.Stats()
	if st.PeakLogicalBytes == 0 {
		t.Fatal("nothing was ever offloaded to the node")
	}
	if st.DedupHitPages == 0 {
		t.Fatal("concurrent containers of one function produced no dedup hits")
	}
	if st.CompressedPages == 0 && st.SpilledPages == 0 {
		t.Fatal("1 MB DRAM never pushed pages into the cold tiers")
	}
	if f.stats.FaultPages == 0 {
		t.Fatal("warm reuses never faulted offloaded pages back")
	}
	// Keep-alive expired and every container recycled: all references
	// released, so the node must be empty again.
	if st.LogicalBytes != 0 || st.ResidentBytes != 0 {
		t.Fatalf("node not drained after recycle: %+v", st)
	}
	if err := node.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMemNodeLedgerInvariantsRandomized is the stress sibling of
// TestMemNodeLedgerInvariants: random invocation interleavings over several
// seeds, tight tier sizes, tenant quota boundaries, widened merge scopes with
// copy-on-write write-hot functions, the shared cache tier, and injected
// fault plans (outages, tier storms, retry/timeout/re-init recovery all
// interleave with offloads, faults, unmerge breaks, discards and evictions).
// Every virtual second the node's internal invariants — including merge
// isolation and cache fairness — must hold and the pool ledger must equal the
// node's logical bytes; after the drain the node must be empty.
func TestMemNodeLedgerInvariantsRandomized(t *testing.T) {
	var offloaded, faulted, quotaRejects, recovered int64
	var merged, breaks, cacheTraffic int64
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodeCfg := memnode.Config{
			DRAMBytes:  1 * workload.MB,
			SpillBytes: int64(2+rng.Intn(7)) * workload.MB,
			// Seed 4 runs the no-dedup baseline; the rest keep shared masters
			// so merge, unmerge, and cache paths are guaranteed coverage.
			DisableDedup:       seed == 4,
			DisableCompression: rng.Intn(3) == 0,
		}
		if rng.Intn(2) == 0 {
			// Quota boundary: one tenant's footprint crosses the cap.
			nodeCfg.TenantQuotaBytes = int64(1+rng.Intn(2)) * workload.MB / 2
		}
		// Merge-domain coverage rotates deterministically with the seed:
		// per-function, tenant-wide, and cross-tenant scopes, with shared and
		// split tenancy, partial opt-in, and the cache tier on some seeds.
		nodeCfg.MergeScope = []memnode.MergeScope{
			memnode.MergeCrossTenant, memnode.MergeTenant, memnode.MergeCrossTenant,
			memnode.MergeFunction, memnode.MergeTenant,
		}[seed%5]
		tenantBySecondLetter := func(fn string) string { return "t" + fn[1:] }
		if seed%2 == 1 {
			nodeCfg.TenantOf = func(string) string { return "t0" }
		} else {
			nodeCfg.TenantOf = tenantBySecondLetter // fa → ta, fb → tb
		}
		switch seed {
		case 1: // shared tenant, opted in: rack-wide master
			nodeCfg.MergeOptIn = []string{"t0"}
		case 2: // split tenants, both opted in: merging crosses the edge
			nodeCfg.MergeOptIn = []string{"ta", "tb"}
		}
		writeRatio := 0.0
		if seed != 3 {
			writeRatio = 0.1 + 0.4*rng.Float64()
		}
		if seed >= 3 {
			nodeCfg.CacheBytes = workload.MB / 2
			nodeCfg.CacheShares = map[string]float64{"ta": 1 + rng.Float64()*3}
		}
		var plan *faultinject.Plan
		if seed != 1 {
			// Seed 1 stays fault-free as the interleaving-only control. The
			// default cadences (75–300s between windows) would leave a
			// 1-minute run mostly quiet, so compress them to guarantee
			// outages overlap the invocation burst.
			fcfg := faultinject.Config{
				Horizon:   time.Minute,
				Intensity: 0.6 + 0.4*rng.Float64(),
				Seed:      seed,
			}
			for k := faultinject.LinkFlap; k <= faultinject.LatencySpike; k++ {
				fcfg.Cadence[k] = time.Duration(6+rng.Intn(8)) * time.Second
				fcfg.BaseDur[k] = time.Duration(2+rng.Intn(3)) * time.Second
			}
			plan = faultinject.New(fcfg)
		}
		e := simtime.NewEngine()
		p := New(e, Config{
			KeepAliveTimeout: time.Duration(3+rng.Intn(5)) * time.Second,
			NodeID:           "n0",
			Pool:             rmem.Config{Node: &nodeCfg, Faults: plan},
			Seed:             seed,
		}, offloadAllPolicy{})
		for _, name := range []string{"fa", "fb"} {
			prof := *tinyProfile()
			prof.Name = name
			prof.RuntimeWriteRatio = writeRatio
			p.Register(name, &prof)
			var times []simtime.Time
			for i, n := 0, 8+rng.Intn(12); i < n; i++ {
				times = append(times, simtime.Time(rng.Int63n(int64(25*time.Second))))
			}
			p.ScheduleInvocations(name, times)
		}
		for i := 1; i <= 45; i++ {
			e.At(simtime.Time(i)*simtime.Time(time.Second), func(_ *simtime.Engine) {
				node := p.Pool().Node()
				if err := node.CheckInvariants(); err != nil {
					t.Fatalf("seed %d t=%ds: %v", seed, i, err)
				}
				if got, want := p.Pool().Used(), node.Stats().LogicalBytes; got != want {
					t.Fatalf("seed %d t=%ds: pool ledger %d != node logical %d", seed, i, got, want)
				}
			})
		}
		e.Run()

		node := p.Pool().Node()
		st := node.Stats()
		if err := node.CheckInvariants(); err != nil {
			t.Fatalf("seed %d after drain: %v", seed, err)
		}
		if st.LogicalBytes != 0 || st.ResidentBytes != 0 {
			t.Fatalf("seed %d: node not drained after recycle: %+v", seed, st)
		}
		if got, want := p.Pool().Used(), int64(0); got != want {
			t.Fatalf("seed %d: pool ledger %d after drain, want 0", seed, got)
		}
		agg := p.Aggregate()
		rec := p.Recovery()
		if total := rec.DoneNormal + rec.DoneRescheduled + rec.DoneReinit; total != agg.Requests {
			t.Fatalf("seed %d: completion classes %d != requests %d", seed, total, agg.Requests)
		}
		offloaded += st.PeakLogicalBytes
		faulted += agg.FaultPages
		quotaRejects += st.QuotaRejectPages
		recovered += rec.FetchRetries + int64(rec.ColdReinits)
		merged += st.MergedPages
		breaks += st.UnmergeBreaks
		cacheTraffic += st.CacheHitPages + st.CacheMissPages
	}
	// The seeds must collectively exercise the paths under test; these are
	// deterministic, so failures here mean the generator went quiet, not
	// flakiness.
	if offloaded == 0 {
		t.Error("no seed ever offloaded to the node")
	}
	if faulted == 0 {
		t.Error("no seed ever faulted pages back")
	}
	if quotaRejects == 0 {
		t.Error("no seed ever hit the tenant quota boundary")
	}
	if recovered == 0 {
		t.Error("no seed ever exercised the fetch-retry/re-init machinery")
	}
	if merged == 0 {
		t.Error("no seed ever merged pages onto a widened-domain master")
	}
	if breaks == 0 {
		t.Error("no seed ever broke a merge master with a copy-on-write unmerge")
	}
	if cacheTraffic == 0 {
		t.Error("no seed ever touched the shared cache tier")
	}
}
