package faas

import (
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// TestMemNodeLedgerInvariants runs a platform on a memnode-backed pool with
// tiers small enough to force compression and spill, and checks at every
// virtual second that (a) the node's internal invariants hold and (b) the
// pool's byte ledger equals the node's logical bytes — i.e. logical bytes
// always equal the sum of the containers' outstanding offloads.
func TestMemNodeLedgerInvariants(t *testing.T) {
	e := simtime.NewEngine()
	p := New(e, Config{
		KeepAliveTimeout: 5 * time.Second,
		NodeID:           "n0",
		Pool: rmem.Config{Node: &memnode.Config{
			DRAMBytes:  1 * workload.MB,
			SpillBytes: 8 * workload.MB,
		}},
		Seed: 1,
	}, offloadAllPolicy{})
	f := p.Register("f", tinyProfile())
	p.ScheduleInvocations("f", []simtime.Time{
		0, 10 * time.Millisecond, // scale-out: two containers, dedup fan-in
		2 * time.Second, 10 * time.Second, // warm reuses that fault pages back
	})
	for i := 1; i <= 30; i++ {
		e.At(simtime.Time(i)*simtime.Time(time.Second), func(_ *simtime.Engine) {
			node := p.Pool().Node()
			if err := node.CheckInvariants(); err != nil {
				t.Fatalf("t=%ds: %v", i, err)
			}
			if got, want := p.Pool().Used(), node.Stats().LogicalBytes; got != want {
				t.Fatalf("t=%ds: pool ledger %d != node logical %d", i, got, want)
			}
		})
	}
	e.Run()

	node := p.Pool().Node()
	st := node.Stats()
	if st.PeakLogicalBytes == 0 {
		t.Fatal("nothing was ever offloaded to the node")
	}
	if st.DedupHitPages == 0 {
		t.Fatal("concurrent containers of one function produced no dedup hits")
	}
	if st.CompressedPages == 0 && st.SpilledPages == 0 {
		t.Fatal("1 MB DRAM never pushed pages into the cold tiers")
	}
	if f.stats.FaultPages == 0 {
		t.Fatal("warm reuses never faulted offloaded pages back")
	}
	// Keep-alive expired and every container recycled: all references
	// released, so the node must be empty again.
	if st.LogicalBytes != 0 || st.ResidentBytes != 0 {
		t.Fatalf("node not drained after recycle: %+v", st)
	}
	if err := node.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
