// Package report renders experiment results for humans: markdown tables for
// EXPERIMENTS.md-style records and ASCII plots that give the figures'
// *shape* directly in a terminal — timelines (Fig. 13), CDFs (Fig. 14), and
// scatter trends (Fig. 16).
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple markdown table builder.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	if len(t.Header) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Header))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

// Stat formats a statistic with the given printf verb, rendering "n/a" when
// ok is false — the companion to the metrics package's comma-ok accessors,
// so empty samplers print as "n/a" rather than a misleading 0.
func Stat(format string, v float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Plot renders points as an ASCII chart of the given size. Points are
// plotted with '*' on a dotted canvas; axis extremes are labeled. It returns
// "" for empty input or degenerate sizes.
func Plot(points []Point, width, height int) string {
	if len(points) == 0 || width < 8 || height < 2 {
		return ""
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		x := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
		y := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
		row := height - 1 - y
		grid[row][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.3g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%10s ┤%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-*.3g%*.3g\n", "", width/2, minX, width-width/2, maxX)
	return b.String()
}

// CDF renders an empirical CDF (fractions in [0,1]) as an ASCII chart.
func CDF(values []float64, fractions []float64, width, height int) string {
	if len(values) != len(fractions) {
		return ""
	}
	pts := make([]Point, len(values))
	for i := range values {
		pts[i] = Point{X: values[i], Y: fractions[i]}
	}
	return Plot(pts, width, height)
}

// HBar renders one horizontal bar scaled so that max spans width runes.
func HBar(label string, value, max float64, width int) string {
	if width < 1 {
		width = 1
	}
	n := 0
	if max > 0 {
		n = int(math.Round(value / max * float64(width)))
	}
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return fmt.Sprintf("%-12s %s %.4g", label, strings.Repeat("█", n)+strings.Repeat("·", width-n), value)
}
