package report_test

import (
	"fmt"
	"strings"

	"github.com/faasmem/faasmem/internal/report"
)

// ExampleTable renders a markdown table.
func ExampleTable() {
	t := &report.Table{Header: []string{"policy", "avg mem"}}
	t.Add("baseline", "506 MB")
	t.Add("faasmem", "149 MB")
	fmt.Print(t.Markdown())
	// Output:
	// | policy | avg mem |
	// | --- | --- |
	// | baseline | 506 MB |
	// | faasmem | 149 MB |
}

// ExampleHBar renders a proportional terminal bar.
func ExampleHBar() {
	fmt.Println(report.HBar("web", 74, 100, 20))
	fmt.Println(report.HBar("graph", 49, 100, 20))
	// Output:
	// web          ███████████████····· 74
	// graph        ██████████·········· 49
}

// ExamplePlot draws an ASCII chart of a memory timeline.
func ExamplePlot() {
	pts := []report.Point{{0, 1200}, {600, 700}, {1200, 500}, {1800, 480}}
	out := report.Plot(pts, 32, 5)
	fmt.Println(strings.Count(out, "*") >= 4)
	// Output:
	// true
}
