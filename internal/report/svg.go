package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file renders experiment series as standalone SVG charts — the
// repository's counterpart of the artifact's draw*.py scripts that emit PDF
// graphs. Charts are deliberately minimal (axes, ticks, series, legend) and
// depend only on the standard library.

// Series is one named line/scatter series.
type Series struct {
	Name   string
	Points []Point
	// Scatter draws markers only (no connecting line).
	Scatter bool
}

// ChartOptions sizes and labels an SVG chart.
type ChartOptions struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height in pixels. Defaults 640×400.
	Width, Height int
	// LogX plots the x axis on a log10 scale (keep-alive sweeps).
	LogX bool
	// YMin forces the y-axis floor (e.g. 0 for memory); NaN = auto.
	YMin float64
}

var seriesColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// SVGChart renders the series as a complete SVG document.
func SVGChart(opt ChartOptions, series ...Series) string {
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}
	const marginL, marginR, marginT, marginB = 64, 16, 36, 48
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	// Data extent.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, p := range s.Points {
			x := p.X
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			n++
		}
	}
	if n == 0 {
		return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"><text x="10" y="20">no data</text></svg>`, w, h)
	}
	if !math.IsNaN(opt.YMin) && opt.YMin < minY {
		minY = opt.YMin
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// 5% headroom on Y.
	pad := (maxY - minY) * 0.05
	maxY += pad

	toX := func(x float64) float64 {
		if opt.LogX {
			x = math.Log10(x)
		}
		return float64(marginL) + (x-minX)/(maxX-minX)*plotW
	}
	toY := func(y float64) float64 {
		return float64(marginT) + (1-(y-minY)/(maxY-minY))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n", w/2, escape(opt.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT, marginL, h-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, h-marginB, w-marginR, h-marginB)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fy := minY + (maxY-minY)*float64(i)/4
		y := toY(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, w-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n", marginL-6, y+4, fmtTick(fy))
		fx := minX + (maxX-minX)*float64(i)/4
		xv := fx
		if opt.LogX {
			xv = math.Pow(10, fx)
		}
		x := float64(marginL) + (fx-minX)/(maxX-minX)*plotW
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n", x, h-marginB+18, fmtTick(xv))
	}
	if opt.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", marginL+int(plotW)/2, h-10, escape(opt.XLabel))
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n", marginT+int(plotH)/2, marginT+int(plotH)/2, escape(opt.YLabel))
	}
	// Series.
	for si, s := range series {
		color := seriesColors[si%len(seriesColors)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		if !s.Scatter && len(pts) > 1 {
			var path strings.Builder
			for i, p := range pts {
				if opt.LogX && p.X <= 0 {
					continue
				}
				cmd := "L"
				if i == 0 {
					cmd = "M"
				}
				fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, toX(p.X), toY(p.Y))
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.TrimSpace(path.String()), color)
		}
		for _, p := range pts {
			if opt.LogX && p.X <= 0 {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", toX(p.X), toY(p.Y), color)
		}
		// Legend entry.
		if s.Name != "" {
			lx, ly := w-marginR-150, marginT+14+si*18
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
			fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+14, ly, escape(s.Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000 || (av < 0.01 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
