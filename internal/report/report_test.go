package report

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.Add("1", "2")
	tb.Add("3") // short row pads
	md := tb.Markdown()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), md)
	}
	if lines[0] != "| a | b |" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "| --- | --- |" {
		t.Errorf("separator = %q", lines[1])
	}
	if lines[3] != "| 3 |  |" {
		t.Errorf("padded row = %q", lines[3])
	}
}

func TestTableEmptyHeader(t *testing.T) {
	if (&Table{}).Markdown() != "" {
		t.Fatal("empty table should render nothing")
	}
}

func TestPlotBasics(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 4}, {3, 9}}
	out := Plot(pts, 40, 8)
	if out == "" {
		t.Fatal("plot empty")
	}
	if strings.Count(out, "*") < 3 {
		t.Errorf("too few plotted points:\n%s", out)
	}
	if !strings.Contains(out, "9") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // height + x-axis labels
		t.Errorf("plot has %d lines, want 9", len(lines))
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	if Plot(nil, 40, 8) != "" {
		t.Error("nil points should render nothing")
	}
	if Plot([]Point{{1, 1}}, 4, 8) != "" {
		t.Error("too-narrow plot should render nothing")
	}
	// Constant series must not divide by zero.
	out := Plot([]Point{{1, 5}, {2, 5}}, 20, 4)
	if !strings.Contains(out, "*") {
		t.Error("constant series lost its points")
	}
}

func TestCDFHelper(t *testing.T) {
	out := CDF([]float64{1, 2, 3}, []float64{0.3, 0.6, 1.0}, 30, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("CDF plot empty")
	}
	if CDF([]float64{1}, []float64{0.5, 1}, 30, 5) != "" {
		t.Fatal("mismatched lengths should render nothing")
	}
}

func TestHBar(t *testing.T) {
	full := HBar("all", 10, 10, 10)
	if strings.Count(full, "█") != 10 {
		t.Errorf("full bar = %q", full)
	}
	half := HBar("half", 5, 10, 10)
	if strings.Count(half, "█") != 5 || strings.Count(half, "·") != 5 {
		t.Errorf("half bar = %q", half)
	}
	zero := HBar("zero", 0, 10, 10)
	if strings.Count(zero, "█") != 0 {
		t.Errorf("zero bar = %q", zero)
	}
	// Value above max clamps instead of overflowing the lane.
	over := HBar("over", 20, 10, 10)
	if strings.Count(over, "█") != 10 {
		t.Errorf("overflow bar = %q", over)
	}
}

func TestSVGChartBasics(t *testing.T) {
	svg := SVGChart(ChartOptions{
		Title:  "Fig 1",
		XLabel: "timeout (s)",
		YLabel: "inactive (%)",
		LogX:   true,
	}, Series{Name: "inactive", Points: []Point{{10, 67}, {100, 89}, {1000, 94}}})
	for _, want := range []string{"<svg", "</svg>", "Fig 1", "timeout (s)", "inactive (%)", "<path", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGChartScatterHasNoPath(t *testing.T) {
	svg := SVGChart(ChartOptions{}, Series{Name: "pts", Scatter: true, Points: []Point{{1, 1}, {2, 2}}})
	if strings.Contains(svg, "<path") {
		t.Error("scatter series drew a line")
	}
	if strings.Count(svg, "<circle") != 2 {
		t.Error("scatter markers missing")
	}
}

func TestSVGChartEmpty(t *testing.T) {
	svg := SVGChart(ChartOptions{})
	if !strings.Contains(svg, "no data") {
		t.Errorf("empty chart = %q", svg)
	}
}

func TestSVGChartEscapesLabels(t *testing.T) {
	svg := SVGChart(ChartOptions{Title: `a<b&"c"`}, Series{Points: []Point{{1, 1}}})
	if strings.Contains(svg, `a<b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;") {
		t.Error("escaped title missing")
	}
}

func TestSVGChartMultiSeriesLegend(t *testing.T) {
	svg := SVGChart(ChartOptions{},
		Series{Name: "one", Points: []Point{{1, 1}, {2, 2}}},
		Series{Name: "two", Points: []Point{{1, 2}, {2, 1}}},
	)
	if !strings.Contains(svg, ">one<") || !strings.Contains(svg, ">two<") {
		t.Error("legend entries missing")
	}
	// Distinct colors for distinct series.
	if !strings.Contains(svg, seriesColors[0]) || !strings.Contains(svg, seriesColors[1]) {
		t.Error("series colors missing")
	}
}

func TestStat(t *testing.T) {
	if got := Stat("%.3fs", 1.5, true); got != "1.500s" {
		t.Errorf("Stat ok = %q", got)
	}
	if got := Stat("%.3fs", 0, false); got != "n/a" {
		t.Errorf("Stat !ok = %q, want n/a", got)
	}
}
