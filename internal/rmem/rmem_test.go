package rmem

import (
	"errors"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

func TestDefaultsApplied(t *testing.T) {
	p := NewPool(Config{})
	cfg := p.Config()
	if cfg.Bandwidth != 7_000_000_000 {
		t.Errorf("default bandwidth = %d, want 7e9 B/s (56 Gbps)", cfg.Bandwidth)
	}
	if cfg.FaultLatency != 15*time.Microsecond {
		t.Errorf("default fault latency = %v", cfg.FaultLatency)
	}
	if cfg.SaturationPoint != 0.8 {
		t.Errorf("default saturation point = %v", cfg.SaturationPoint)
	}
}

func TestOffloadAccountsUsedBytes(t *testing.T) {
	p := NewPool(Config{Capacity: 1 << 20})
	done, err := p.OffloadBytes(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Errorf("completion time = %v, want > 0", done)
	}
	if p.Used() != 4096 {
		t.Errorf("Used = %d, want 4096", p.Used())
	}
}

func TestOffloadZeroBytesIsFree(t *testing.T) {
	p := NewPool(Config{})
	done, err := p.OffloadBytes(time.Second, 0)
	if err != nil || done != time.Second {
		t.Fatalf("zero offload = (%v, %v)", done, err)
	}
}

func TestOffloadRespectsCapacity(t *testing.T) {
	p := NewPool(Config{Capacity: 8192})
	if _, err := p.OffloadBytes(0, 8192); err != nil {
		t.Fatal(err)
	}
	_, err := p.OffloadBytes(0, 1)
	if !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	if p.Used() != 8192 {
		t.Errorf("failed offload changed Used to %d", p.Used())
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	p := NewPool(Config{Capacity: 0})
	if _, err := p.OffloadBytes(0, 1<<40); err != nil {
		t.Fatalf("unlimited pool rejected offload: %v", err)
	}
}

func TestTransfersSerializeOnLink(t *testing.T) {
	// 1 MB/s link: 1 MB takes 1 s.
	p := NewPool(Config{Bandwidth: 1 << 20})
	d1, err := p.OffloadBytes(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := p.OffloadBytes(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 900*time.Millisecond || d1 > 1100*time.Millisecond {
		t.Errorf("first transfer done at %v, want ~1s", d1)
	}
	if d2 < d1+900*time.Millisecond {
		t.Errorf("second transfer done at %v, want queued after first (%v)", d2, d1)
	}
}

func TestRecallReturnsBytes(t *testing.T) {
	p := NewPool(Config{})
	p.OffloadBytes(0, 10000)
	done := p.RecallBytes(time.Second, 4000)
	if done < time.Second {
		t.Errorf("recall completes at %v, before request", done)
	}
	if p.Used() != 6000 {
		t.Errorf("Used after recall = %d, want 6000", p.Used())
	}
	// Recalling more than stored clamps.
	p.RecallBytes(2*time.Second, 1<<30)
	if p.Used() != 0 {
		t.Errorf("Used after over-recall = %d, want 0", p.Used())
	}
}

func TestFaultLatencyBase(t *testing.T) {
	p := NewPool(Config{FaultLatency: 6 * time.Microsecond})
	p.OffloadBytes(0, 4096)
	lat := p.Fault(time.Hour, 4096) // long after, link idle
	if lat < 6*time.Microsecond {
		t.Errorf("fault latency %v < base fetch latency", lat)
	}
	if lat > 20*time.Microsecond {
		t.Errorf("idle-link fault latency %v unexpectedly high", lat)
	}
	if p.Used() != 0 {
		t.Errorf("fault did not drain pool: used = %d", p.Used())
	}
}

func TestFaultLatencyGrowsWhenSaturated(t *testing.T) {
	p := NewPool(Config{Bandwidth: 1 << 20, FaultLatency: 6 * time.Microsecond})
	p.OffloadBytes(0, 100<<20) // keep pool stocked
	idle := p.Fault(time.Hour, 4096)

	// Saturate: record sustained traffic near bandwidth.
	now := 2 * time.Hour
	for i := 0; i < 50; i++ {
		p.meter[Offload].Record(now, 1<<20)
	}
	busy := p.Fault(now, 4096)
	if busy <= idle {
		t.Errorf("saturated fault %v not slower than idle fault %v", busy, idle)
	}
}

func TestDiscardDropsWithoutTransfer(t *testing.T) {
	p := NewPool(Config{})
	p.OffloadBytes(0, 10000)
	before := p.Meter(Recall).Total()
	p.Discard(0, 4000)
	if p.Used() != 6000 {
		t.Errorf("Used = %d, want 6000", p.Used())
	}
	if p.Meter(Recall).Total() != before {
		t.Error("Discard moved bytes through the link meter")
	}
	p.Discard(0, 1<<30)
	if p.Used() != 0 {
		t.Errorf("Used after over-discard = %d", p.Used())
	}
}

func TestNegativeSizesPanic(t *testing.T) {
	p := NewPool(Config{})
	for name, fn := range map[string]func(){
		"offload": func() { p.OffloadBytes(0, -1) },
		"recall":  func() { p.RecallBytes(0, -1) },
		"fault":   func() { p.Fault(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with negative size did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeterTotalsAndAverage(t *testing.T) {
	m := NewMeter(time.Second)
	m.Record(0, 1000)
	m.Record(time.Second, 1000)
	if m.Total() != 2000 {
		t.Errorf("Total = %d, want 2000", m.Total())
	}
	avg := m.Average(2 * time.Second)
	if avg != 1000 {
		t.Errorf("Average = %v B/s, want 1000", avg)
	}
	if m.Average(0) != 0 {
		t.Error("Average at start time should be 0")
	}
}

func TestMeterRateDecays(t *testing.T) {
	m := NewMeter(time.Second)
	m.Record(0, 1<<20)
	r0 := m.Rate(0)
	r1 := m.Rate(time.Second)
	r10 := m.Rate(10 * time.Second)
	if !(r0 > r1 && r1 > r10) {
		t.Errorf("rate not decaying: %v %v %v", r0, r1, r10)
	}
	// After one half-life the rate halves (within float tolerance).
	if r1 < r0*0.45 || r1 > r0*0.55 {
		t.Errorf("half-life decay: r1/r0 = %v, want ~0.5", r1/r0)
	}
}

func TestMeterEmptyRate(t *testing.T) {
	m := NewMeter(time.Second)
	if m.Rate(time.Hour) != 0 {
		t.Error("rate of silent meter should be 0")
	}
	if m.Average(time.Hour) != 0 {
		t.Error("average of silent meter should be 0")
	}
}

func TestMeterPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero half-life did not panic")
			}
		}()
		NewMeter(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative record did not panic")
			}
		}()
		NewMeter(time.Second).Record(0, -1)
	}()
}

func TestGovernorScaleIsOneUnderBudget(t *testing.T) {
	p := NewPool(Config{Bandwidth: 1 << 30})
	g := NewGovernor(p, 0.7)
	if s := g.Scale(0); s != 1 {
		t.Errorf("idle scale = %v, want 1", s)
	}
}

func TestGovernorThrottlesOverBudget(t *testing.T) {
	p := NewPool(Config{Bandwidth: 1 << 20}) // 1 MiB/s
	g := NewGovernor(p, 0.5)
	now := simtime.Time(time.Minute)
	// Sustain ~2 MiB/s of offload traffic (4x the 0.5 budget).
	for i := 0; i < 4; i++ {
		p.meter[Offload].Record(now, 512<<10)
	}
	s := g.Scale(now)
	if s >= 1 {
		t.Fatalf("scale = %v, want < 1 when over budget", s)
	}
	if s <= 0 {
		t.Fatalf("scale = %v, must stay positive", s)
	}
}

func TestGovernorBadLimitFallsBack(t *testing.T) {
	p := NewPool(Config{})
	for _, lim := range []float64{0, -1, 2} {
		g := NewGovernor(p, lim)
		if g.Limit != 0.7 {
			t.Errorf("limit %v: governor limit = %v, want fallback 0.7", lim, g.Limit)
		}
	}
}

func TestUtilization(t *testing.T) {
	p := NewPool(Config{Bandwidth: 1 << 20})
	if u := p.Utilization(0); u != 0 {
		t.Errorf("idle utilization = %v", u)
	}
	p.meter[Offload].Record(time.Second, 1<<20)
	if u := p.Utilization(time.Second); u <= 0 {
		t.Errorf("utilization after traffic = %v, want > 0", u)
	}
}

func TestFaultBatchPipelines(t *testing.T) {
	p := NewPool(Config{FaultLatency: 10 * time.Microsecond, FaultPipeline: 8})
	p.OffloadBytes(0, 1<<30)
	// 16 pages = 2 pipeline rounds of latency + wire time.
	lat := p.FaultBatch(time.Hour, 16, 4096)
	if lat < 20*time.Microsecond {
		t.Errorf("batch latency %v < 2 pipeline rounds", lat)
	}
	// Far cheaper than 16 sequential faults.
	if lat > 16*10*time.Microsecond {
		t.Errorf("batch latency %v not pipelined", lat)
	}
	if p.Used() != 1<<30-16*4096 {
		t.Errorf("batch did not drain pool: %d", p.Used())
	}
}

func TestFaultBatchZero(t *testing.T) {
	p := NewPool(Config{})
	if lat := p.FaultBatch(0, 0, 4096); lat != 0 {
		t.Errorf("zero batch latency = %v", lat)
	}
}

func TestFaultBatchNegativePanics(t *testing.T) {
	p := NewPool(Config{})
	defer func() {
		if recover() == nil {
			t.Error("negative batch did not panic")
		}
	}()
	p.FaultBatch(0, -1, 4096)
}

func TestPresets(t *testing.T) {
	cxl := NewPool(CXLConfig())
	rdma := NewPool(Config{})
	ssd := NewPool(SSDConfig())
	if cxl.Config().FaultLatency >= rdma.Config().FaultLatency {
		t.Error("CXL faults should be faster than RDMA")
	}
	if cxl.Config().Bandwidth <= rdma.Config().Bandwidth {
		t.Error("CXL bandwidth should exceed RDMA")
	}
	if ssd.Config().Bandwidth != 1_000_000 {
		t.Errorf("SSD bandwidth = %d, want durability-limited 1 MB/s", ssd.Config().Bandwidth)
	}
	if ssd.Config().FaultLatency <= rdma.Config().FaultLatency {
		t.Error("SSD faults should be slower than RDMA")
	}
}

func TestAcceptableBytesRespectsBacklog(t *testing.T) {
	p := NewPool(Config{Bandwidth: 1 << 20, MaxBacklog: time.Second})
	// Idle link: one second of bandwidth.
	if got := p.AcceptableBytes(0); got != 1<<20 {
		t.Fatalf("idle budget = %d, want 1 MiB", got)
	}
	// Saturate the backlog.
	p.OffloadBytes(0, 1<<20)
	if got := p.AcceptableBytes(0); got > 4096 {
		t.Fatalf("budget after saturation = %d, want ~0", got)
	}
	// Budget recovers as virtual time passes.
	if got := p.AcceptableBytes(500 * time.Millisecond); got < 400<<10 {
		t.Fatalf("budget at +500ms = %d, want ~512 KiB", got)
	}
}

func TestAcceptableBytesRespectsCapacity(t *testing.T) {
	p := NewPool(Config{Capacity: 8192, MaxBacklog: time.Hour})
	p.OffloadBytes(0, 4096)
	if got := p.AcceptableBytes(time.Hour); got != 4096 {
		t.Fatalf("budget = %d, want remaining capacity 4096", got)
	}
}
