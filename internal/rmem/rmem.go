// Package rmem models the remote memory pool side of the architecture: a
// memory node reachable over a high-bandwidth link (InfiniBand/RDMA in the
// paper, ported Fastswap as the swap path).
//
// The model captures the two properties every experiment depends on:
//
//   - a demand fault on an offloaded page pays a fixed fetch latency that
//     inflates request latency (and grows once the link saturates), and
//   - bulk offload/recall traffic is limited by finite link bandwidth, which
//     both serializes concurrent transfers and feeds the paper's bandwidth
//     figures (Fig. 16, §9).
//
// All time is virtual (simtime.Time); the pool never blocks.
package rmem

import (
	"errors"
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// Config describes a memory pool node and its link.
type Config struct {
	// Capacity is the pool's total bytes. Zero means unlimited.
	Capacity int64
	// Bandwidth is the link bandwidth in bytes per second. Defaults to a
	// 56 Gbps InfiniBand-class link (the paper's Mellanox FDR setup).
	Bandwidth int64
	// FaultLatency is the base cost of an on-demand 4 KiB page fetch,
	// including the kernel page-fault and swap-in path around the RDMA read
	// (Fastswap's wire time is single-digit microseconds; the end-to-end
	// fault costs more).
	FaultLatency time.Duration
	// SaturationFactor scales fault latency once link utilization passes
	// SaturationPoint: latency multiplies by up to (1 + SaturationFactor).
	// §9 of the paper: "little communication latency increase until the
	// bandwidth is saturated".
	SaturationFactor float64
	// SaturationPoint is the utilization fraction (0..1] where queueing
	// effects begin. Defaults to 0.8.
	SaturationPoint float64
	// FaultPipeline is the number of in-flight demand fetches the swap path
	// sustains (Fastswap issues asynchronous RDMA reads). Batched faults pay
	// FaultLatency once per pipeline-full of pages. Default 4.
	FaultPipeline int
	// MaxBacklog bounds how much transfer work may be queued on the link:
	// an offload is truncated once completing it would push the link's
	// backlog past this horizon. This is what makes a slow pool (the §9 SSD
	// with ~1 MB/s durability-limited writes) genuinely unable to absorb
	// offload traffic. Default 1 s.
	MaxBacklog time.Duration
	// Node optionally attaches a simulated pool-side memory node (dedup,
	// compression and spill tiers, tenant quotas). When set, capacity
	// admission consults the node's effective post-dedup/post-compression
	// residency instead of Capacity, and the described offload/recall paths
	// feed it page provenance. The wire/backlog model is unchanged.
	Node *memnode.Config
	// Faults optionally injects a deterministic fault plan beneath the
	// pool: link flaps and crashes fail fetches/offloads with typed errors,
	// degrade windows shrink effective bandwidth, latency spikes inflate
	// fault latency, and tier storms zero the memnode's headroom. A nil or
	// empty plan is dropped at construction, keeping the fault-free path
	// bit-identical to a pool built without this field.
	Faults *faultinject.Plan
	// RetryMax bounds FetchRetry's backoff attempts. Default 6.
	RetryMax int
	// RetryBackoff is FetchRetry's initial backoff, doubling per attempt.
	// Default 20 ms.
	RetryBackoff time.Duration
}

// DefaultConfig returns the 2-node CloudLab-like setup used by the paper:
// 56 Gbps link, ~15 µs end-to-end page fault, 64 GiB pool.
func DefaultConfig() Config {
	return Config{
		Capacity:         64 << 30,
		Bandwidth:        56_000_000_000 / 8, // 56 Gbps in bytes/s
		FaultLatency:     15 * time.Microsecond,
		SaturationFactor: 4,
		SaturationPoint:  0.8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Bandwidth <= 0 {
		c.Bandwidth = d.Bandwidth
	}
	if c.FaultLatency <= 0 {
		c.FaultLatency = d.FaultLatency
	}
	if c.SaturationPoint <= 0 || c.SaturationPoint > 1 {
		c.SaturationPoint = d.SaturationPoint
	}
	if c.SaturationFactor <= 0 {
		c.SaturationFactor = d.SaturationFactor
	}
	if c.FaultPipeline <= 0 {
		c.FaultPipeline = 4
	}
	if c.MaxBacklog <= 0 {
		c.MaxBacklog = time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 6
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	return c
}

// The pool's typed fault-path errors. Retry/backoff logic branches on them:
// link-down and pool-down are transient (retryable); pool-full and timeout
// are terminal for the issuing batch.
var (
	// ErrPoolFull is returned when an offload would exceed pool capacity.
	ErrPoolFull = errors.New("rmem: memory pool is full")
	// ErrLinkDown is returned while a link-flap window holds the pool link
	// fully down.
	ErrLinkDown = errors.New("rmem: pool link is down")
	// ErrPoolDown is returned while the pool node is crashed.
	ErrPoolDown = errors.New("rmem: pool node is down")
	// ErrFetchTimeout is returned when FetchRetry exhausts its retry budget
	// or the per-container fetch timeout before the link recovers.
	ErrFetchTimeout = errors.New("rmem: page fetch timed out")
)

// Retryable reports whether err is a transient fault-path error worth
// retrying with backoff (link or pool-node outage). Pool-full and timeout
// are terminal.
func Retryable(err error) bool {
	return errors.Is(err, ErrLinkDown) || errors.Is(err, ErrPoolDown)
}

// Direction labels a transfer for bandwidth accounting.
type Direction int

const (
	// Offload is compute-node → pool traffic (page-out).
	Offload Direction = iota
	// Recall is pool → compute-node traffic (page-in).
	Recall
)

// Pool is a remote memory node plus its link. Not safe for concurrent use;
// the DES engine is single-threaded by design.
type Pool struct {
	cfg       Config
	used      int64
	busyUntil simtime.Time
	lastStart simtime.Time
	lastDone  simtime.Time
	meter     [2]*Meter // per direction
	node      *memnode.Node
	tr        *telemetry.Tracer
	met       poolMetrics

	// flt is the injected fault plan; nil when no (or an empty) plan is
	// configured, so every fault branch below is a single nil check on the
	// fault-free path.
	flt *faultinject.Plan
	// healthy tracks the last observed degraded-mode state for edge-
	// triggered enter/exit events.
	healthy bool
	// windowsTraced guards the one-time fault-window trace dump (a rack-
	// shared pool is instrumented once per attached platform).
	windowsTraced bool
	// tl is the attached time-series recorder (nil disables); tlClaimed
	// marks that one platform already owns the per-window pool sampler.
	tl        *timeseries.Recorder
	tlClaimed bool
	// pend stages a described batch's provenance for the byte-flow ledger
	// (see flow.go).
	pend flowPending
}

// poolMetrics are the pool's live counters; every field is a no-op nil
// *telemetry.Metric until Instrument attaches a registry.
type poolMetrics struct {
	offloadBytes  *telemetry.Metric
	recallBytes   *telemetry.Metric
	usedBytes     *telemetry.Metric
	saturation    *telemetry.Metric
	fetchRetries  *telemetry.Metric
	fetchTimeouts *telemetry.Metric
	degraded      *telemetry.Metric
	injectedStall *telemetry.Metric
}

// Instrument attaches a tracer and metric registry to the pool. Either may
// be nil. A rack-shared pool is instrumented by every platform that attaches
// to it; later calls with only nil sinks are ignored so a telemetry-disabled
// node cannot detach a sibling's instrumentation.
func (p *Pool) Instrument(tr *telemetry.Tracer, reg *telemetry.Registry) {
	if tr == nil && reg == nil {
		return
	}
	p.tr = tr
	p.met = poolMetrics{
		offloadBytes:  reg.Counter("faasmem_link_offload_bytes_total", "bytes bulk-transferred node->pool"),
		recallBytes:   reg.Counter("faasmem_link_recall_bytes_total", "bytes transferred pool->node (bulk and faults)"),
		usedBytes:     reg.Gauge("faasmem_pool_used_bytes", "bytes currently stored in the remote pool"),
		saturation:    reg.Counter("faasmem_link_saturation_events_total", "faults served while link utilization was past the saturation point"),
		fetchRetries:  reg.Counter("faasmem_fetch_retries_total", "page-fetch attempts retried after a transient link/pool fault"),
		fetchTimeouts: reg.Counter("faasmem_fetch_timeouts_total", "page fetches abandoned after exhausting retries or the fetch timeout"),
		degraded:      reg.Counter("faasmem_degraded_transitions_total", "degraded-mode enter+exit transitions observed by the pool"),
		injectedStall: reg.Counter("faasmem_injected_stall_us_total", "microseconds of fault-latency added by injected latency spikes"),
	}
	p.node.Instrument(reg)
	p.traceFaultWindows(tr)
}

// NewPool creates a pool from cfg, applying defaults for zero fields.
func NewPool(cfg Config) *Pool {
	c := cfg.withDefaults()
	p := &Pool{
		cfg:     c,
		meter:   [2]*Meter{NewMeter(time.Second), NewMeter(time.Second)},
		healthy: true,
	}
	if c.Node != nil {
		p.node = memnode.New(*c.Node)
	}
	if c.Faults != nil && !c.Faults.Empty() {
		p.flt = c.Faults
	}
	return p
}

// Node returns the attached pool-side memory node, or nil.
func (p *Pool) Node() *memnode.Node { return p.node }

// AttachNode attaches a (possibly shared) memory node after construction.
func (p *Pool) AttachNode(n *memnode.Node) { p.node = n }

// Used returns bytes currently stored in the pool.
func (p *Pool) Used() int64 { return p.used }

// Capacity returns the configured capacity (0 = unlimited).
func (p *Pool) Capacity() int64 { return p.cfg.Capacity }

// Config returns the effective configuration.
func (p *Pool) Config() Config { return p.cfg }

// Meter returns the bandwidth meter for a direction.
func (p *Pool) Meter(d Direction) *Meter { return p.meter[d] }

// bandwidthAt returns the link's effective bandwidth at now: the configured
// rate, shrunk by an active degrade window when a fault plan is injected.
func (p *Pool) bandwidthAt(now simtime.Time) float64 {
	bw := float64(p.cfg.Bandwidth)
	if p.flt != nil {
		bw *= p.flt.BandwidthFactor(now)
		if bw < 1 {
			bw = 1
		}
	}
	return bw
}

// transferTime returns how long moving n bytes takes at full bandwidth.
func (p *Pool) transferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(p.cfg.Bandwidth) * float64(time.Second))
}

// transferTimeAt is transferTime at the effective (possibly degraded)
// bandwidth in force at now.
func (p *Pool) transferTimeAt(now simtime.Time, bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	if p.flt == nil {
		return p.transferTime(bytes)
	}
	return time.Duration(float64(bytes) / p.bandwidthAt(now) * float64(time.Second))
}

// reserve serializes a bulk transfer on the link, FIFO.
func (p *Pool) reserve(now simtime.Time, bytes int64) (start, done simtime.Time) {
	start = now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	done = start + p.transferTimeAt(start, bytes)
	p.busyUntil = done
	p.lastStart, p.lastDone = start, done
	return start, done
}

// LastTransferWindow returns the [start, done) window of the most recent
// bulk transfer reserved on the link — the span an offloader just caused.
func (p *Pool) LastTransferWindow() (start, done simtime.Time) {
	return p.lastStart, p.lastDone
}

// Backlog returns how long the link's queued bulk work extends past now:
// the wait a transfer enqueued at now would incur before starting.
func (p *Pool) Backlog(now simtime.Time) time.Duration {
	if p.busyUntil <= now {
		return 0
	}
	return time.Duration(p.busyUntil - now)
}

// BacklogBytes converts Backlog to the bytes still queued on the wire.
func (p *Pool) BacklogBytes(now simtime.Time) int64 {
	return int64(p.Backlog(now).Seconds() * p.bandwidthAt(now))
}

// AcceptableBytes reports how many bytes the link can accept for offload at
// time now before its queued backlog exceeds MaxBacklog, additionally capped
// by remaining pool capacity. Offloaders should truncate their batches to
// this budget.
func (p *Pool) AcceptableBytes(now simtime.Time) int64 {
	if p.flt != nil {
		// Degraded mode pauses offload entirely: an unhealthy link accepts
		// nothing, and a tier storm zeroes the node's headroom.
		p.noteHealth(now)
		if p.flt.Unhealthy(now) || p.flt.TierStorm(now) {
			return 0
		}
	}
	slack := p.cfg.MaxBacklog
	if p.busyUntil > now {
		slack -= p.busyUntil - now
	}
	if slack <= 0 {
		return 0
	}
	budget := int64(slack.Seconds() * p.bandwidthAt(now))
	if p.node != nil {
		// Effective headroom: the node dedups and compresses, so it can
		// accept more logical bytes than its raw free DRAM.
		if free := p.node.AcceptableBytes(); free < budget {
			budget = free
		}
	} else if p.cfg.Capacity > 0 {
		if free := p.cfg.Capacity - p.used; free < budget {
			budget = free
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// OffloadBytes moves bytes from a compute node into the pool. It returns the
// virtual time at which the transfer completes, or ErrPoolFull if capacity
// would be exceeded (pages then stay local; the paper leaves rescheduling of
// this case as future work).
func (p *Pool) OffloadBytes(now simtime.Time, bytes int64) (simtime.Time, error) {
	if bytes < 0 {
		panic(fmt.Sprintf("rmem: negative offload %d", bytes))
	}
	if bytes == 0 {
		return now, nil
	}
	if err := p.probeHealth(now); err != nil {
		return now, err
	}
	if p.node == nil && p.cfg.Capacity > 0 && p.used+bytes > p.cfg.Capacity {
		return now, ErrPoolFull
	}
	return p.commitOffload(now, bytes), nil
}

// commitOffload performs the wire and accounting side of an admitted offload.
func (p *Pool) commitOffload(now simtime.Time, bytes int64) simtime.Time {
	p.used += bytes
	start, done := p.reserve(now, bytes)
	p.meter[Offload].Record(now, bytes)
	p.met.offloadBytes.Add(bytes)
	p.met.usedBytes.Set(p.used)
	p.tl.AddCounter(now, timeseries.SeriesOffloadBytes, poolDims, bytes)
	p.recordFlow(now, timeseries.FlowOffload, bytes)
	p.tr.Record(telemetry.Event{
		At: start, Dur: time.Duration(done - start),
		Kind: telemetry.KindLinkTransfer, Actor: "link",
		Value: bytes, Aux: int64(Offload),
	})
	return done
}

// RecallBytes moves bytes back from the pool in bulk (e.g. prefetching a
// semi-warm container's hot set). It returns the completion time.
func (p *Pool) RecallBytes(now simtime.Time, bytes int64) simtime.Time {
	if bytes < 0 {
		panic(fmt.Sprintf("rmem: negative recall %d", bytes))
	}
	if bytes == 0 {
		return now
	}
	if bytes > p.used {
		bytes = p.used
	}
	p.used -= bytes
	start, done := p.reserve(now, bytes)
	p.meter[Recall].Record(now, bytes)
	p.met.recallBytes.Add(bytes)
	p.met.usedBytes.Set(p.used)
	p.tl.AddCounter(now, timeseries.SeriesRecallBytes, poolDims, bytes)
	p.recordFlow(now, timeseries.FlowRecall, bytes)
	p.tr.Record(telemetry.Event{
		At: start, Dur: time.Duration(done - start),
		Kind: telemetry.KindLinkTransfer, Actor: "link",
		Value: bytes, Aux: int64(Recall),
	})
	return done
}

// Fault performs a demand fetch of pageBytes on a page fault. Faults bypass
// the bulk FIFO (RDMA reads interleave with streaming writes) but slow down
// as the link saturates. The returned latency is what the faulting request
// observes; the page's bytes leave the pool.
func (p *Pool) Fault(now simtime.Time, pageBytes int64) time.Duration {
	if pageBytes < 0 {
		panic("rmem: negative fault size")
	}
	if pageBytes > p.used {
		pageBytes = p.used
	}
	p.used -= pageBytes
	p.meter[Recall].Record(now, pageBytes)
	p.met.recallBytes.Add(pageBytes)
	p.met.usedBytes.Set(p.used)
	p.tl.AddCounter(now, timeseries.SeriesRecallBytes, poolDims, pageBytes)
	p.recordFlow(now, timeseries.FlowFault, pageBytes)
	lat := p.faultLatencyAt(now) + p.transferTimeAt(now, pageBytes)
	util := p.Utilization(now)
	if util > p.cfg.SaturationPoint {
		over := (util - p.cfg.SaturationPoint) / (1 - p.cfg.SaturationPoint)
		if over > 1 {
			over = 1
		}
		lat += time.Duration(float64(lat) * over * p.cfg.SaturationFactor)
		p.recordSaturation(now, util)
	}
	return lat
}

// FaultStall decomposes the latency a batch of demand faults adds to a
// request: Total is what the request observes, Queueing the share caused by
// link congestion (the saturation surcharge), and BacklogBytes the bulk
// work queued on the wire when the faults were issued. Attribution uses the
// split to separate "pages were remote" from "the link was busy".
type FaultStall struct {
	Total        time.Duration
	Queueing     time.Duration
	BacklogBytes int64
	// Tier is the pool-side tier surcharge (decompression and spill reads)
	// when a memory node is attached; it is included in Total.
	Tier time.Duration
	// Injected is the extra latency added by an active fault-plan latency
	// spike; it is included in Total.
	Injected time.Duration
	// Backoff is the retry wait FetchRetry spent before the fetch finally
	// went through; it is included in Total. Retries counts the failed
	// attempts. Both are zero outside FetchRetry.
	Backoff time.Duration
	Retries int
}

// FaultBatch performs n demand fetches of pageBytes each during one request
// execution. Fetches pipeline FaultPipeline-deep, so the request observes
// one FaultLatency per pipeline-full plus the wire time of the data, with
// the same saturation inflation as single faults. The pages' bytes leave the
// pool. It returns the total added latency the request observes.
func (p *Pool) FaultBatch(now simtime.Time, n int, pageBytes int64) time.Duration {
	return p.FaultBatchDetail(now, n, pageBytes).Total
}

// FaultBatchDetail is FaultBatch returning the latency decomposition.
func (p *Pool) FaultBatchDetail(now simtime.Time, n int, pageBytes int64) FaultStall {
	if n < 0 || pageBytes < 0 {
		panic("rmem: negative fault batch")
	}
	if n == 0 {
		return FaultStall{}
	}
	total := int64(n) * pageBytes
	if total > p.used {
		total = p.used
	}
	p.used -= total
	p.meter[Recall].Record(now, total)
	p.met.recallBytes.Add(total)
	p.met.usedBytes.Set(p.used)
	p.tl.AddCounter(now, timeseries.SeriesRecallBytes, poolDims, total)
	p.recordFlow(now, timeseries.FlowFault, total)
	rounds := (n + p.cfg.FaultPipeline - 1) / p.cfg.FaultPipeline
	lat := time.Duration(rounds)*p.cfg.FaultLatency + p.transferTimeAt(now, total)
	stall := FaultStall{BacklogBytes: p.BacklogBytes(now)}
	if p.flt != nil {
		if f := p.flt.LatencyFactor(now); f > 1 {
			stall.Injected = time.Duration(float64(time.Duration(rounds)*p.cfg.FaultLatency) * (f - 1))
			lat += stall.Injected
			p.met.injectedStall.Add(stall.Injected.Microseconds())
		}
	}
	util := p.Utilization(now)
	if util > p.cfg.SaturationPoint {
		over := (util - p.cfg.SaturationPoint) / (1 - p.cfg.SaturationPoint)
		if over > 1 {
			over = 1
		}
		stall.Queueing = time.Duration(float64(lat) * over * p.cfg.SaturationFactor)
		lat += stall.Queueing
		p.recordSaturation(now, util)
	}
	stall.Total = lat
	return stall
}

// recordSaturation notes one fault served on a saturated link.
func (p *Pool) recordSaturation(now simtime.Time, util float64) {
	p.met.saturation.Inc()
	p.tr.Record(telemetry.Event{
		At: now, Kind: telemetry.KindLinkSaturation, Actor: "link",
		Value: int64(util * 100),
	})
}

// Discard drops bytes from the pool without a transfer — used when a
// container is recycled and its remote pages are simply freed. now stamps
// the flow ledger's window.
func (p *Pool) Discard(now simtime.Time, bytes int64) {
	if bytes > p.used {
		bytes = p.used
	}
	p.used -= bytes
	p.met.usedBytes.Set(p.used)
	p.recordFlow(now, timeseries.FlowDiscard, bytes)
}

// Utilization estimates current link utilization in [0, 1+] from the recent
// transfer rate in both directions.
func (p *Pool) Utilization(now simtime.Time) float64 {
	rate := p.meter[Offload].Rate(now) + p.meter[Recall].Rate(now)
	return rate / p.bandwidthAt(now)
}
