package rmem

import (
	"errors"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
)

const pageB = 4096

// nodePool builds a pool backed by a memory node for described-path tests.
func nodePool(node memnode.Config) *Pool {
	return NewPool(Config{Node: &node})
}

func TestOffloadExactlyAtCapacity(t *testing.T) {
	p := NewPool(Config{Capacity: 3 * pageB})
	if _, err := p.OffloadBytes(0, 2*pageB); err != nil {
		t.Fatal(err)
	}
	// The last page lands exactly on the boundary — must succeed.
	if _, err := p.OffloadBytes(0, pageB); err != nil {
		t.Fatalf("offload to exact capacity rejected: %v", err)
	}
	if p.Used() != 3*pageB {
		t.Fatalf("Used = %d, want full capacity %d", p.Used(), 3*pageB)
	}
	// One more byte tips over.
	if _, err := p.OffloadBytes(0, 1); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	if p.Used() != 3*pageB {
		t.Fatalf("failed offload changed Used to %d", p.Used())
	}
}

func TestAcceptableBytesTruncatesAtFreeSpace(t *testing.T) {
	// Backlog budget is huge; free capacity is the binding constraint.
	p := NewPool(Config{Capacity: 10 * pageB, MaxBacklog: time.Hour})
	p.OffloadBytes(0, 9*pageB)
	if got := p.AcceptableBytes(time.Hour); got != pageB {
		t.Fatalf("budget = %d, want exact free space %d", got, pageB)
	}
	p.OffloadBytes(time.Hour, pageB)
	if got := p.AcceptableBytes(2 * time.Hour); got != 0 {
		t.Fatalf("budget at full capacity = %d, want 0", got)
	}
}

func TestOffloadDescribedNilNodeIsAllOrNothing(t *testing.T) {
	p := NewPool(Config{Capacity: 4 * pageB})
	var counts ClassCounts
	counts[memnode.ClassRuntime] = 5
	acc, _, err := p.OffloadDescribed(0, "c0", "f", counts, pageB)
	if !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	if acc.Total() != 0 || p.Used() != 0 {
		t.Fatalf("failed offload accepted %d pages, used %d", acc.Total(), p.Used())
	}
	counts[memnode.ClassRuntime] = 4
	acc, done, err := p.OffloadDescribed(0, "c0", "f", counts, pageB)
	if err != nil || acc != counts {
		t.Fatalf("fitting offload = (%v, %v), want full acceptance", acc, err)
	}
	if done <= 0 || p.Used() != 4*pageB {
		t.Fatalf("done = %v, used = %d", done, p.Used())
	}
}

func TestOffloadDescribedPartialWithNode(t *testing.T) {
	// 8 pages of DRAM, a single page of spill, no compression: a 10-page
	// private batch is truncated to 9.
	p := nodePool(memnode.Config{
		DRAMBytes:          8 * pageB,
		SpillBytes:         pageB,
		DisableCompression: true,
	})
	var counts ClassCounts
	counts[memnode.ClassExec] = 10
	acc, _, err := p.OffloadDescribed(0, "c0", "f", counts, pageB)
	if err != nil {
		t.Fatal(err)
	}
	if acc[memnode.ClassExec] != 9 {
		t.Fatalf("accepted = %d pages, want 9", acc[memnode.ClassExec])
	}
	// The pool's byte ledger tracks what the compute side actually moved.
	if p.Used() != 9*pageB {
		t.Fatalf("Used = %d, want %d", p.Used(), 9*pageB)
	}
	if st := p.Node().Stats(); st.FullRejectPages != 1 {
		t.Fatalf("FullRejectPages = %d, want 1", st.FullRejectPages)
	}
}

func TestOffloadDescribedDedupAdmitsBeyondDRAM(t *testing.T) {
	// 8 pages of DRAM, dedup on: two containers of the same function can
	// both park 8 init pages — the second batch shares the resident copy.
	p := nodePool(memnode.Config{
		DRAMBytes:          8 * pageB,
		SpillBytes:         pageB, // bounded, so rejection is possible
		DisableCompression: true,
	})
	var counts ClassCounts
	counts[memnode.ClassInit] = 8
	for _, owner := range []string{"c0", "c1"} {
		acc, _, err := p.OffloadDescribed(0, owner, "f", counts, pageB)
		if err != nil || acc != counts {
			t.Fatalf("owner %s: accepted %v (err %v), want full batch", owner, acc, err)
		}
	}
	// Both batches crossed the wire and are logically held...
	if p.Used() != 16*pageB {
		t.Fatalf("Used = %d, want %d", p.Used(), 16*pageB)
	}
	st := p.Node().Stats()
	if st.LogicalBytes != 16*pageB || st.ResidentBytes != 8*pageB {
		t.Fatalf("logical/resident = %d/%d, want %d/%d",
			st.LogicalBytes, st.ResidentBytes, 16*pageB, 8*pageB)
	}
	if st.DedupHitPages != 8 {
		t.Fatalf("DedupHitPages = %d, want 8", st.DedupHitPages)
	}
}

func TestAcceptableBytesConsultsNode(t *testing.T) {
	// Without a node this config is an unlimited pool; with one, admission
	// stops at the node's free space.
	p := nodePool(memnode.Config{
		DRAMBytes:          4 * pageB,
		SpillBytes:         pageB,
		DisableCompression: true,
	})
	if got := p.AcceptableBytes(time.Hour); got != 5*pageB {
		t.Fatalf("idle budget = %d, want node free space %d", got, 5*pageB)
	}
	var counts ClassCounts
	counts[memnode.ClassExec] = 4
	if _, _, err := p.OffloadDescribed(0, "c0", "f", counts, pageB); err != nil {
		t.Fatal(err)
	}
	if got := p.AcceptableBytes(time.Hour); got != pageB {
		t.Fatalf("budget = %d, want remaining node space %d", got, pageB)
	}
}

func TestFaultBatchOwnerAddsTierSurcharge(t *testing.T) {
	spillLat := 80 * time.Microsecond
	p := nodePool(memnode.Config{
		DRAMBytes:          4 * pageB,
		SpillBytes:         64 * pageB,
		DisableCompression: true,
		SpillLatency:       spillLat,
	})
	var counts ClassCounts
	counts[memnode.ClassExec] = 10 // 4 hot + 6 spilled
	if _, _, err := p.OffloadDescribed(0, "c0", "f", counts, pageB); err != nil {
		t.Fatal(err)
	}
	stall := p.FaultBatchOwner(time.Hour, "c0", "f", counts, pageB)
	if stall.Tier <= 0 {
		t.Fatalf("tier surcharge = %v, want > 0 for spilled pages", stall.Tier)
	}
	if stall.Total < stall.Tier {
		t.Fatalf("Total %v does not include tier %v", stall.Total, stall.Tier)
	}
	// 6 of 10 pages come off the spill tier.
	want := time.Duration(float64(10) * (6.0 / 10.0) * float64(spillLat))
	if stall.Tier != want {
		t.Fatalf("tier = %v, want %v", stall.Tier, want)
	}
	// Holdings were released along with the recall.
	if st := p.Node().Stats(); st.LogicalBytes != 0 {
		t.Fatalf("LogicalBytes after full recall = %d, want 0", st.LogicalBytes)
	}
}

func TestFaultBatchOwnerNilNodeHasNoTier(t *testing.T) {
	p := NewPool(Config{})
	p.OffloadBytes(0, 10*pageB)
	var counts ClassCounts
	counts[memnode.ClassRuntime] = 10
	stall := p.FaultBatchOwner(time.Hour, "c0", "f", counts, pageB)
	if stall.Tier != 0 {
		t.Fatalf("nil-node tier = %v, want 0", stall.Tier)
	}
}

func TestDiscardOwnerReleasesNodeAndLedger(t *testing.T) {
	p := nodePool(memnode.Config{DRAMBytes: 64 * pageB, DisableCompression: true})
	var counts ClassCounts
	counts[memnode.ClassInit] = 4
	counts[memnode.ClassExec] = 3
	if _, _, err := p.OffloadDescribed(0, "c0", "f", counts, pageB); err != nil {
		t.Fatal(err)
	}
	p.DiscardOwner(0, "c0", "f", int64(counts.Total())*pageB)
	if p.Used() != 0 {
		t.Fatalf("Used after discard = %d, want 0", p.Used())
	}
	st := p.Node().Stats()
	if st.LogicalBytes != 0 || st.ResidentBytes != 0 {
		t.Fatalf("node after discard = %+v, want empty", st)
	}
	if err := p.Node().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
