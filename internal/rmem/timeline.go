package rmem

import (
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// poolDims is the shared dimension set for pool-side timeline series. A
// package-level value keeps the enabled hot path allocation-free.
var poolDims = timeseries.Dims{Node: "pool"}

// InstrumentTimeline attaches a time-series recorder to the pool and arms
// its flight-recorder triggers from the fault plan's window starts. A
// rack-shared pool is instrumented by every platform that attaches to it;
// the first caller with a non-nil recorder becomes the sampling owner
// (reported by the return value) so per-window pool gauges are sampled
// exactly once per rack, not once per node.
func (p *Pool) InstrumentTimeline(tl *timeseries.Recorder) (owner bool) {
	if tl == nil {
		return false
	}
	claimed := p.tlClaimed
	p.tl = tl
	p.tlClaimed = true
	if claimed {
		return false
	}
	// One pool lifetime = one flow-ledger run: a recorder that outlives the
	// pool (a gateway's service-lifetime sink) accumulates multiple runs and
	// its conservation audit reports itself not-applicable instead of
	// flagging cross-run occupancy jumps.
	tl.StartFlowRun()
	if p.flt != nil {
		windows := p.flt.Windows()
		starts := make([]simtime.Time, len(windows))
		for i, w := range windows {
			starts[i] = w.Start
		}
		tl.ArmFaultStarts(starts)
	}
	return true
}

// SampleTimeline records the pool's per-window gauges at now: occupancy,
// fault-plan activity, health, and — when a memory node is attached — dedup
// savings and per-tenant quota pressure. The owning platform's window
// ticker calls this once per window.
func (p *Pool) SampleTimeline(now simtime.Time) {
	if !p.tl.Enabled() {
		return
	}
	p.tl.SetGauge(now, timeseries.SeriesPoolUsedBytes, poolDims, p.used)
	if p.flt != nil {
		p.tl.SetGauge(now, timeseries.SeriesFaultActiveKinds, poolDims, int64(p.flt.ActiveKinds(now)))
		var unhealthy int64
		if p.flt.Unhealthy(now) {
			unhealthy = 1
		}
		p.tl.SetGauge(now, timeseries.SeriesPoolUnhealthy, poolDims, unhealthy)
	}
	if p.node == nil {
		return
	}
	if logical := p.node.LogicalBytes(); logical > 0 {
		p.tl.SetGauge(now, timeseries.SeriesDedupSavedPermille, poolDims,
			p.node.DedupSavedBytes()*1000/logical)
	}
	if quota := p.node.Config().TenantQuotaBytes; quota > 0 {
		for _, u := range p.node.TenantUsages() {
			p.tl.SetGauge(now, timeseries.SeriesTenantQuotaPct,
				timeseries.Dims{Node: "pool", Tenant: u.Tenant},
				u.LogicalBytes*100/quota)
		}
	}
	if cacheCap := p.node.Config().CacheBytes; cacheCap > 0 {
		p.tl.SetGauge(now, timeseries.SeriesCacheUsedBytes, poolDims, p.node.CacheUsedBytes())
		for _, u := range p.node.CacheOccupancies() {
			p.tl.SetGauge(now, timeseries.SeriesCacheOccupancyPct,
				timeseries.Dims{Node: "pool", Tenant: u.Tenant},
				u.LogicalBytes*100/cacheCap)
		}
	}
}
