package rmem

import (
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// This file is the pool side of copy-on-write unmerge: a container dirtied
// pages it held against a shared merge master (internal/memnode merge
// domains), so the write breaks the share — the master's content for those
// pages crosses the link to the writer, and a private copy is written back
// under the writing tenant. The pricing reuses the shared-region WriteBreak
// shape (internal/sharedmem): a ShareRead-like fetch of the dirty pages plus
// an offload-shaped commit for the private writeback.

// BreakOutcome is what a WriteBreakOwner call did and cost.
type BreakOutcome struct {
	// Stall is the critical-path latency the writing request observes:
	// pipelined fetch of the master content, wire time, tier surcharge
	// (waived on a shared-cache hit), saturation and fault-plan inflation,
	// plus the private writeback's commit wait.
	Stall FaultStall
	// Pages privatized on the node; the owner's remote holdings are
	// unchanged.
	Pages int
	// Recalled pages did not fit as a private copy; their bytes left the
	// pool and the caller must fold them back into local memory.
	Recalled int
}

// WriteBreakOwner prices dirtying pages the owner holds against a shared
// merge master under fn's tenant. Without a node, or when the pages are held
// privately (function-scope dedup hits its own master; dedup off), there is
// nothing to unmerge and the call is free. Returns an error while the remote
// path is down (fault plans); the caller treats the write as locally
// buffered and retries on a later request.
func (p *Pool) WriteBreakOwner(now simtime.Time, owner, fn string, class memnode.Class, pages int, pageBytes int64) (BreakOutcome, error) {
	if pages < 0 || pageBytes < 0 {
		panic("rmem: negative write break")
	}
	if pages == 0 || p.node == nil {
		return BreakOutcome{}, nil
	}
	if err := p.probeHealth(now); err != nil {
		return BreakOutcome{}, err
	}
	res := p.node.WriteBreak(owner, fn, class, pages)
	broke := res.Pages + res.Recalled
	if broke == 0 {
		return BreakOutcome{}, nil
	}

	// Fetch the master content backing the dirtied pages: pipelined demand
	// reads, like a fault batch, but occupancy is unchanged (direction-0
	// FlowUnmerge) — except for the recalled remainder, which leaves the
	// pool like a fault.
	fetch := int64(broke) * pageBytes
	p.meter[Recall].Record(now, fetch)
	p.met.recallBytes.Add(fetch)
	if p.tl != nil {
		p.tl.AddFlow(now, timeseries.FlowUnmerge, timeseries.Dims{
			Node: "pool", Tenant: fn, Class: class.String(),
		}, fetch)
		p.tl.FlowOccupancy(now, p.used)
	}
	if res.Recalled > 0 {
		out := int64(res.Recalled) * pageBytes
		if out > p.used {
			out = p.used
		}
		if out > 0 {
			p.used -= out
			p.stageFlowTenant(fn)
			p.recordFlow(now, timeseries.FlowFault, out)
		}
	}

	rounds := (broke + p.cfg.FaultPipeline - 1) / p.cfg.FaultPipeline
	lat := time.Duration(rounds)*p.cfg.FaultLatency + p.transferTimeAt(now, fetch)
	stall := FaultStall{BacklogBytes: p.BacklogBytes(now), Tier: res.Latency}
	if p.flt != nil {
		if f := p.flt.LatencyFactor(now); f > 1 {
			stall.Injected = time.Duration(float64(time.Duration(rounds)*p.cfg.FaultLatency) * (f - 1))
			lat += stall.Injected
			p.met.injectedStall.Add(stall.Injected.Microseconds())
		}
	}
	util := p.Utilization(now)
	if util > p.cfg.SaturationPoint {
		over := (util - p.cfg.SaturationPoint) / (1 - p.cfg.SaturationPoint)
		if over > 1 {
			over = 1
		}
		stall.Queueing = time.Duration(float64(lat) * over * p.cfg.SaturationFactor)
		lat += stall.Queueing
		p.recordSaturation(now, util)
	}
	stall.Total = lat + res.Latency

	// The private writeback rides the bulk offload link; the writer waits
	// for its commit like sharedmem's CoW break waits for the region copy.
	if res.Pages > 0 {
		wb := int64(res.Pages) * pageBytes
		_, done := p.reserve(now, wb)
		p.meter[Offload].Record(now, wb)
		p.met.offloadBytes.Add(wb)
		if done > now {
			stall.Total += time.Duration(done - now)
		}
	}

	p.tr.Record(telemetry.Event{
		At: now, Dur: stall.Total, Kind: telemetry.KindLinkTransfer, Actor: "link",
		Value: fetch, Aux: int64(Recall),
	})
	return BreakOutcome{Stall: stall, Pages: res.Pages, Recalled: res.Recalled}, nil
}

// OwnerClassPages reports how many pages of one class the pool-side memory
// node still holds for owner (0 without a node) — the write-hot path's view
// of how much of the runtime segment is remote and thus breakable.
func (p *Pool) OwnerClassPages(owner, fn string, class memnode.Class) int {
	if p.node == nil {
		return 0
	}
	return p.node.OwnerPages(owner, fn, class)
}
