package rmem

import "time"

// This file provides the alternative memory-pool technologies the paper's
// §9 discussion weighs against the RDMA pool: CXL-attached memory (faster,
// "FaaSMem's mechanism can also be applied") and SSD swap (rejected because
// write-durability limits throttle it to ~1 MB/s at Meta). They make the
// trade-off reproducible: see the PoolComparison extension experiment.

// CXLConfig returns a CXL-based memory pool: load/store-class latency
// (sub-microsecond per cacheline translates to a few microseconds per 4 KiB
// page walk) and higher per-link bandwidth than the FDR InfiniBand setup.
func CXLConfig() Config {
	return Config{
		Capacity:         64 << 30,
		Bandwidth:        64_000_000_000, // ~64 GB/s CXL 2.0 x8-class
		FaultLatency:     2 * time.Microsecond,
		SaturationFactor: 2,
		SaturationPoint:  0.85,
		FaultPipeline:    16,
	}
}

// SSDConfig returns an SSD-backed swap target with the write throttling §9
// cites ("Meta needs to limit their write speeds to less than 1 MB/s"):
// offload bandwidth collapses and faults pay NVMe read latency.
func SSDConfig() Config {
	return Config{
		Capacity:         256 << 30,
		Bandwidth:        1_000_000, // durability-limited writes
		FaultLatency:     90 * time.Microsecond,
		SaturationFactor: 8,
		SaturationPoint:  0.5,
		FaultPipeline:    8,
	}
}
