package rmem

import (
	"errors"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
)

// planWith builds a hand-crafted plan from windows, so tests control exactly
// when the pool is unhealthy.
func planWith(ws ...faultinject.Window) *faultinject.Plan {
	return faultinject.FromWindows(ws)
}

func sec(s int) simtime.Time { return simtime.Time(s) * simtime.Time(time.Second) }

func onePageFault() ClassCounts {
	var c ClassCounts
	c[memnode.ClassRuntime] = 1
	return c
}

// TestTypedFaultErrors is the table test over the fault-path error taxonomy:
// every probe-visible state maps to exactly one typed error, and Retryable
// classifies them for the caller's retry loop.
func TestTypedFaultErrors(t *testing.T) {
	flap := faultinject.Window{Kind: faultinject.LinkFlap, Start: sec(10), End: sec(20)}
	crash := faultinject.Window{Kind: faultinject.PoolCrash, Start: sec(30), End: sec(40)}

	cases := []struct {
		name string
		pool *Pool
		at   simtime.Time
		want error
	}{
		{"healthy gap", NewPool(Config{Faults: planWith(flap, crash)}), sec(25), nil},
		{"link down", NewPool(Config{Faults: planWith(flap, crash)}), sec(15), ErrLinkDown},
		{"pool down", NewPool(Config{Faults: planWith(flap, crash)}), sec(35), ErrPoolDown},
		{"no plan", NewPool(Config{}), sec(15), nil},
		{"window end exclusive", NewPool(Config{Faults: planWith(flap)}), sec(20), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.pool.OffloadBytes(tc.at, 4096)
			if !errors.Is(err, tc.want) {
				t.Fatalf("OffloadBytes at %v: err = %v, want %v", tc.at, err, tc.want)
			}
			var counts ClassCounts
			counts[memnode.ClassRuntime] = 1
			_, ferr := tc.pool.FetchRetry(tc.at, "o", "f", counts, 4096, time.Millisecond)
			if tc.want == nil && ferr != nil {
				t.Fatalf("FetchRetry on healthy path errored: %v", ferr)
			}
			if tc.want != nil {
				if !errors.Is(ferr, ErrFetchTimeout) || !errors.Is(ferr, tc.want) {
					t.Fatalf("FetchRetry err = %v, want ErrFetchTimeout wrapping %v", ferr, tc.want)
				}
			}
		})
	}

	retryTable := []struct {
		err  error
		want bool
	}{
		{ErrLinkDown, true},
		{ErrPoolDown, true},
		{ErrPoolFull, false},
		{ErrFetchTimeout, false},
		{nil, false},
		{errors.New("other"), false},
	}
	for _, tc := range retryTable {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestFullPoolStaysErrPoolFull pins that capacity exhaustion keeps its own
// typed error and is never confused with fault-injection outages.
func TestFullPoolStaysErrPoolFull(t *testing.T) {
	p := NewPool(Config{Capacity: 4096, Faults: planWith(
		faultinject.Window{Kind: faultinject.LinkFlap, Start: sec(100), End: sec(200)},
	)})
	if _, err := p.OffloadBytes(0, 4096); err != nil {
		t.Fatal(err)
	}
	_, err := p.OffloadBytes(0, 1)
	if !errors.Is(err, ErrPoolFull) || errors.Is(err, ErrLinkDown) {
		t.Fatalf("full-pool err = %v, want pure ErrPoolFull", err)
	}
	if Retryable(err) {
		t.Error("ErrPoolFull must not be retryable: backoff cannot free capacity")
	}
}

// TestFetchRetrySucceedsAfterFlap: a fetch issued mid-flap retries with
// exponential backoff and lands once the window closes, charging the waited
// backoff to the returned stall.
func TestFetchRetrySucceedsAfterFlap(t *testing.T) {
	// Flap covers [1s, 1s+50ms); first fetch attempt at 1s.
	p := NewPool(Config{
		Faults: planWith(faultinject.Window{
			Kind: faultinject.LinkFlap, Start: sec(1), End: sec(1) + simtime.Time(50*time.Millisecond),
		}),
		RetryBackoff: 20 * time.Millisecond,
		RetryMax:     6,
	})
	if _, err := p.OffloadBytes(0, 4096); err != nil {
		t.Fatal(err)
	}
	stall, err := p.FetchRetry(sec(1), "o", "f", onePageFault(), 4096, 0)
	if err != nil {
		t.Fatalf("FetchRetry: %v", err)
	}
	// Backoff probes at +20ms (still down), +60ms (up): two retries, 60ms.
	if stall.Retries != 2 {
		t.Errorf("Retries = %d, want 2", stall.Retries)
	}
	if stall.Backoff != 60*time.Millisecond {
		t.Errorf("Backoff = %v, want 60ms", stall.Backoff)
	}
	if stall.Total < stall.Backoff {
		t.Errorf("Total %v < Backoff %v: waited time not charged", stall.Total, stall.Backoff)
	}
	if p.Used() != 0 {
		t.Errorf("fetch did not drain pool: used = %d", p.Used())
	}
}

// TestFetchRetryTimesOutAndLeavesLedger: when the outage outlasts the
// per-call timeout the fetch fails typed, after the attempt budget the
// wrapped cause names the outage kind, and the pool ledger is untouched —
// the caller still owns the pages for fallback or re-init.
func TestFetchRetryTimesOutAndLeavesLedger(t *testing.T) {
	p := NewPool(Config{
		Faults: planWith(faultinject.Window{
			Kind: faultinject.PoolCrash, Start: sec(1), End: sec(3600),
		}),
		RetryBackoff: 10 * time.Millisecond,
	})
	if _, err := p.OffloadBytes(0, 4096); err != nil {
		t.Fatal(err)
	}
	stall, err := p.FetchRetry(sec(1), "o", "f", onePageFault(), 4096, 25*time.Millisecond)
	if !errors.Is(err, ErrFetchTimeout) {
		t.Fatalf("err = %v, want ErrFetchTimeout", err)
	}
	if !errors.Is(err, ErrPoolDown) {
		t.Fatalf("err = %v, want the ErrPoolDown cause wrapped", err)
	}
	// 10ms fits the 25ms budget, the next 20ms step would not: one retry.
	if stall.Backoff != 10*time.Millisecond {
		t.Errorf("Backoff = %v, want 10ms", stall.Backoff)
	}
	if p.Used() != 4096 {
		t.Errorf("failed fetch mutated ledger: used = %d, want 4096", p.Used())
	}
	// Without a timeout the attempt budget (default 6 doublings) gives up.
	stall, err = p.FetchRetry(sec(1), "o", "f", onePageFault(), 4096, 0)
	if !errors.Is(err, ErrFetchTimeout) {
		t.Fatalf("budget-exhausted err = %v, want ErrFetchTimeout", err)
	}
	if stall.Retries != 7 {
		t.Errorf("Retries = %d, want RetryMax+1 = 7", stall.Retries)
	}
}

// TestAcceptableBytesZeroDuringOutageAndStorm: degraded mode pauses offload
// admission entirely — during link flaps, pool crashes and tier-full storms
// AcceptableBytes clamps to zero, and recovers after the window.
func TestAcceptableBytesZeroDuringOutageAndStorm(t *testing.T) {
	nodeCfg := memnode.Config{DRAMBytes: 1 << 30}
	p := NewPool(Config{
		Node: &nodeCfg,
		Faults: planWith(
			faultinject.Window{Kind: faultinject.LinkFlap, Start: sec(10), End: sec(20)},
			faultinject.Window{Kind: faultinject.TierStorm, Start: sec(30), End: sec(40)},
		),
	})
	if got := p.AcceptableBytes(sec(5)); got <= 0 {
		t.Errorf("AcceptableBytes before faults = %d, want > 0", got)
	}
	if got := p.AcceptableBytes(sec(15)); got != 0 {
		t.Errorf("AcceptableBytes during flap = %d, want 0", got)
	}
	if got := p.AcceptableBytes(sec(35)); got != 0 {
		t.Errorf("AcceptableBytes during tier storm = %d, want 0", got)
	}
	if got := p.AcceptableBytes(sec(45)); got <= 0 {
		t.Errorf("AcceptableBytes after recovery = %d, want > 0", got)
	}
}

// TestGovernorZeroWhileUnhealthy: the bandwidth governor clamps the offload
// scale to zero during an outage so policies stop generating offload work.
func TestGovernorZeroWhileUnhealthy(t *testing.T) {
	p := NewPool(Config{Faults: planWith(
		faultinject.Window{Kind: faultinject.PoolCrash, Start: sec(10), End: sec(20)},
	)})
	g := NewGovernor(p, 0.5)
	if s := g.Scale(sec(5)); s != 1 {
		t.Errorf("Scale before crash = %v, want 1", s)
	}
	if s := g.Scale(sec(15)); s != 0 {
		t.Errorf("Scale during crash = %v, want 0", s)
	}
	if s := g.Scale(sec(25)); s != 1 {
		t.Errorf("Scale after recovery = %v, want 1", s)
	}
}

// TestDegradedTransitionsCount: edge-triggered degraded bookkeeping counts
// each enter/exit once, not per probe.
func TestDegradedTransitionsCount(t *testing.T) {
	p := NewPool(Config{Faults: planWith(
		faultinject.Window{Kind: faultinject.LinkFlap, Start: sec(10), End: sec(20)},
	)})
	for _, at := range []int{5, 6, 11, 12, 15, 21, 22} {
		p.probeHealth(sec(at))
	}
	if !p.Healthy(sec(25)) {
		t.Error("pool unhealthy after window closed")
	}
	// Transitions: healthy→degraded at 11, degraded→healthy at 21.
	if p.Degraded(sec(15)) != true || p.Degraded(sec(5)) != false {
		t.Error("Degraded() disagrees with plan windows")
	}
}

// TestBandwidthFactorSlowsTransfers: a link-degrade window stretches
// transfer time by its factor.
func TestBandwidthFactorSlowsTransfers(t *testing.T) {
	degrade := faultinject.Window{
		Kind: faultinject.LinkDegrade, Start: sec(100), End: sec(200), Factor: 4,
	}
	healthyPool := NewPool(Config{Bandwidth: 1 << 20})
	degradedPool := NewPool(Config{Bandwidth: 1 << 20, Faults: planWith(degrade)})

	dHealthy, err := healthyPool.OffloadBytes(sec(50), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dSame, err := degradedPool.OffloadBytes(sec(50), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if dSame != dHealthy {
		t.Errorf("outside window transfer = %v, want %v (factor must not leak)", dSame, dHealthy)
	}
	dSlow, err := degradedPool.OffloadBytes(sec(150), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	slow := time.Duration(dSlow - sec(150))
	if slow < 3900*time.Millisecond || slow > 4100*time.Millisecond {
		t.Errorf("degraded 1MB @ 1MB/s / factor 4 took %v, want ~4s", slow)
	}
}
