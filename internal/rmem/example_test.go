package rmem_test

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/rmem"
)

// Example models an offload followed by a demand fault on the default
// 56 Gbps pool.
func Example() {
	pool := rmem.NewPool(rmem.Config{})
	done, err := pool.OffloadBytes(0, 100<<20) // 100 MiB page-out
	if err != nil {
		panic(err)
	}
	fmt.Printf("offload wire time: ~%dms\n", done.Milliseconds())
	lat := pool.FaultBatch(time.Second, 1, 4096) // one 4 KiB demand fault
	fmt.Printf("single fault: %dus\n", lat.Microseconds())
	// Output:
	// offload wire time: ~14ms
	// single fault: 15us
}

// ExampleSSDConfig shows why §9 rules SSDs out: the durability-limited
// write bandwidth makes even a small offload take minutes.
func ExampleSSDConfig() {
	ssd := rmem.NewPool(rmem.SSDConfig())
	done, _ := ssd.OffloadBytes(0, 100<<20)
	fmt.Printf("100 MiB to SSD: ~%.0fs\n", done.Seconds())
	// Output:
	// 100 MiB to SSD: ~105s
}
