// Package rmem_test exercises ErrPoolFull from the outside: a full pool must
// clamp a pucket offload at the platform layer, leaving the unaccepted pages
// local instead of losing them.
package rmem_test

import (
	"errors"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

// drainPolicy offloads every runtime/init page whenever a container idles —
// the most aggressive pucket drain possible, guaranteed to hit a tiny pool's
// capacity wall.
type drainPolicy struct{}

func (drainPolicy) Name() string { return "drain-all" }
func (drainPolicy) Attach(e *simtime.Engine, v policy.View) policy.ContainerPolicy {
	return &drainContainer{view: v}
}

type drainContainer struct {
	policy.Base
	view policy.View
}

func (c *drainContainer) Idle(e *simtime.Engine) {
	s := c.view.Space()
	for _, r := range []pagemem.Range{c.view.RuntimeRange(), c.view.InitRange()} {
		ids := policy.CollectPages(s, r, pagemem.Inactive, 0)
		ids = append(ids, policy.CollectPages(s, r, pagemem.Hot, 0)...)
		c.view.OffloadPages(e, ids)
	}
}

func drainProfile() *workload.Profile {
	return &workload.Profile{
		Name:            "drain",
		Language:        workload.Python,
		CPUShare:        0.1,
		RuntimeBytes:    1 * workload.MB,
		RuntimeHotBytes: 256 * 1024,
		InitBytes:       512 * 1024,
		InitHotBytes:    256 * 1024,
		Pattern:         workload.FixedHot,
		ExecBytes:       256 * 1024,
		ExecTime:        100 * time.Millisecond,
		InitTime:        200 * time.Millisecond,
		LaunchTime:      300 * time.Millisecond,
		QuotaBytes:      8 * workload.MB,
	}
}

func TestErrPoolFullDirect(t *testing.T) {
	p := rmem.NewPool(rmem.Config{Capacity: 4096})
	if _, err := p.OffloadBytes(0, 4096); err != nil {
		t.Fatal(err)
	}
	_, err := p.OffloadBytes(0, 1)
	if !errors.Is(err, rmem.ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
}

func TestPucketOffloadClampsAtFullPool(t *testing.T) {
	const capacity = 16 * 4096 // far less than the ~384 drainable pages
	e := simtime.NewEngine()
	p := faas.New(e, faas.Config{
		KeepAliveTimeout: 10 * time.Second,
		Pool:             rmem.Config{Capacity: capacity},
		Seed:             1,
	}, drainPolicy{})
	p.Register("f", drainProfile())
	p.ScheduleInvocations("f", []simtime.Time{0, 2 * time.Second})
	// Stop while the container idles in keep-alive, after the post-request
	// drain hit the capacity wall.
	e.RunUntil(4 * time.Second)

	// The pool never overfills, no matter how hard the policy drains.
	if used := p.Pool().Used(); used > capacity {
		t.Fatalf("pool used %d exceeds capacity %d", used, capacity)
	}
	// The clamp keeps the unaccepted pages local: node-local memory stays
	// populated and remote never exceeds what the pool admitted.
	if p.NodeRemoteBytes() > capacity {
		t.Fatalf("remote bytes %d exceed pool capacity", p.NodeRemoteBytes())
	}
	if p.NodeLocalBytes() == 0 {
		t.Fatal("every page left local memory despite the full pool")
	}
	// Both requests still completed — ErrPoolFull degrades offloading, not
	// request service.
	e.Run()
	agg := p.Aggregate()
	if agg.Requests != 2 {
		t.Fatalf("requests = %d, want 2", agg.Requests)
	}
}
