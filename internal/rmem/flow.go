package rmem

import (
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// This file feeds the timeline's page byte-flow ledger. Every mutation of
// the pool's byte occupancy (commitOffload, RecallBytes, Fault,
// FaultBatchDetail, Discard, RecallLocal) calls recordFlow with the exact
// clamped byte count it applied, which both accumulates the flow and
// checkpoints the resulting occupancy — the pair the conservation audit
// (timeseries.AuditFlows) verifies per window.
//
// Attribution uses a staging pattern: the described wrappers (OffloadDescribed,
// FaultBatchOwner, RecallDescribed, DiscardOwner, RecallLocal) know the
// batch's tenant and per-class page counts but delegate the occupancy
// mutation to the low-level movers, which are also public entry points of
// their own. The wrapper stages its provenance just before delegating; the
// mover's recordFlow consumes it, splitting the clamped bytes per page class
// under the staged tenant. The DES engine is single-threaded, so a plain
// field carries the hand-off. Un-described calls fall back to the aggregate
// pool dimension.

// flowPending stages one described batch's provenance between a wrapper and
// the mover it delegates to.
type flowPending struct {
	active bool
	tenant string
	// counts/pageBytes describe the per-class split; pageBytes == 0 means
	// tenant-only attribution (DiscardOwner knows bytes, not pages).
	counts    ClassCounts
	pageBytes int64
}

// stageFlow stages per-class provenance for the next mover's flow record.
// No-op when no timeline is attached or the batch is empty — the guard
// matters because a staged batch the mover never consumes would leak into a
// later unrelated flow.
func (p *Pool) stageFlow(fn string, counts ClassCounts, pageBytes int64) {
	if p.tl == nil || counts.Total() == 0 || pageBytes <= 0 {
		return
	}
	p.pend = flowPending{active: true, tenant: fn, counts: counts, pageBytes: pageBytes}
}

// stageFlowTenant stages tenant-only provenance (no per-class split).
func (p *Pool) stageFlowTenant(fn string) {
	if p.tl == nil {
		return
	}
	p.pend = flowPending{active: true, tenant: fn}
}

// clearFlowStage drops staged provenance after a wrapper's delegate bailed
// out before mutating occupancy (health-probe or capacity error).
func (p *Pool) clearFlowStage() { p.pend.active = false }

// recordFlow accumulates bytes of flow kind at now into the ledger and
// checkpoints the pool's occupancy. bytes must be exactly what the caller
// applied to p.used (after clamping); the conservation audit holds the two
// to account. Staged provenance is consumed here: the bytes are split per
// page class under the staged tenant, capped so the recorded total equals
// the applied total even when the mover clamped the batch.
func (p *Pool) recordFlow(now simtime.Time, kind timeseries.FlowKind, bytes int64) {
	if p.tl == nil {
		return
	}
	if pend := p.pend; pend.active {
		p.pend.active = false
		switch {
		case pend.pageBytes > 0:
			rem := bytes
			for cls := range pend.counts {
				if rem <= 0 {
					break
				}
				if pend.counts[cls] == 0 {
					continue
				}
				b := int64(pend.counts[cls]) * pend.pageBytes
				if b > rem {
					b = rem
				}
				p.tl.AddFlow(now, kind, timeseries.Dims{
					Node: "pool", Tenant: pend.tenant, Class: memnode.Class(cls).String(),
				}, b)
				rem -= b
			}
			if rem > 0 {
				p.tl.AddFlow(now, kind, poolDims, rem)
			}
		default:
			p.tl.AddFlow(now, kind, timeseries.Dims{Node: "pool", Tenant: pend.tenant}, bytes)
		}
	} else {
		p.tl.AddFlow(now, kind, poolDims, bytes)
	}
	p.tl.FlowOccupancy(now, p.used)
}

// tierFlowsBefore snapshots the memory node's cumulative compressed/spilled/
// merged page counters ahead of a node call that may evict or merge (zeros
// when flows are off or no node is attached).
func (p *Pool) tierFlowsBefore() (comp, spill, merged int64) {
	if p.tl == nil || p.node == nil {
		return 0, 0, 0
	}
	return p.node.CompressedPages(), p.node.SpilledPages(), p.node.MergedPages()
}

// recordTierFlows records the compress/spill/merge movement since
// tierFlowsBefore as zero-direction flows: bytes changing tier (or collapsing
// onto a widened merge master) inside the pool without changing occupancy.
// They are attributed to the tenant whose batch triggered the movement (the
// evicted pages themselves may belong to anyone).
func (p *Pool) recordTierFlows(now simtime.Time, fn string, compBefore, spillBefore, mergedBefore, pageBytes int64) {
	if p.tl == nil || p.node == nil || pageBytes <= 0 {
		return
	}
	if d := p.node.CompressedPages() - compBefore; d > 0 {
		p.tl.AddFlow(now, timeseries.FlowCompress,
			timeseries.Dims{Node: "pool", Tenant: fn}, d*pageBytes)
	}
	if d := p.node.SpilledPages() - spillBefore; d > 0 {
		p.tl.AddFlow(now, timeseries.FlowSpill,
			timeseries.Dims{Node: "pool", Tenant: fn}, d*pageBytes)
	}
	if d := p.node.MergedPages() - mergedBefore; d > 0 {
		p.tl.AddFlow(now, timeseries.FlowMerge,
			timeseries.Dims{Node: "pool", Tenant: fn, Class: memnode.ClassRuntime.String()}, d*pageBytes)
	}
}
