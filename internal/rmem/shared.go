package rmem

import (
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// This file is the pool side of shared-state regions (internal/sharedmem):
// a consumer maps a region read-shared, pulling its bytes across the link
// like a demand-fault batch, but the pool keeps the resident copy so the
// next consumer can map the same region. Occupancy is therefore unchanged —
// the ledger records the movement as the direction-0 FlowShareRead so the
// conservation audit still holds bytes to account.

// ShareRead prices a read-shared mapping of pages held by owner (a region's
// synthetic owner) under tenant fn: pipelined demand fetches plus wire time
// plus the memnode tier surcharge for compressed/spilled fractions, with the
// same saturation inflation as FaultBatchDetail. The pool's byte ledger and
// the owner's holdings are untouched. Returns an error while the remote path
// is down (fault plans); the caller replays the producer instead.
func (p *Pool) ShareRead(now simtime.Time, owner, fn string, pages int, pageBytes int64) (FaultStall, error) {
	if pages < 0 || pageBytes < 0 {
		panic("rmem: negative share read")
	}
	if pages == 0 {
		return FaultStall{}, nil
	}
	if err := p.probeHealth(now); err != nil {
		return FaultStall{}, err
	}
	var tier time.Duration
	if p.node != nil {
		tier = p.node.ReadCost(owner, fn, memnode.ClassShared, pages).Latency
	}
	total := int64(pages) * pageBytes
	p.meter[Recall].Record(now, total)
	p.met.recallBytes.Add(total)
	if p.tl != nil {
		p.tl.AddFlow(now, timeseries.FlowShareRead, timeseries.Dims{
			Node: "pool", Tenant: fn, Class: memnode.ClassShared.String(),
		}, total)
		p.tl.FlowOccupancy(now, p.used)
	}
	rounds := (pages + p.cfg.FaultPipeline - 1) / p.cfg.FaultPipeline
	lat := time.Duration(rounds)*p.cfg.FaultLatency + p.transferTimeAt(now, total)
	stall := FaultStall{BacklogBytes: p.BacklogBytes(now), Tier: tier}
	if p.flt != nil {
		if f := p.flt.LatencyFactor(now); f > 1 {
			stall.Injected = time.Duration(float64(time.Duration(rounds)*p.cfg.FaultLatency) * (f - 1))
			lat += stall.Injected
			p.met.injectedStall.Add(stall.Injected.Microseconds())
		}
	}
	util := p.Utilization(now)
	if util > p.cfg.SaturationPoint {
		over := (util - p.cfg.SaturationPoint) / (1 - p.cfg.SaturationPoint)
		if over > 1 {
			over = 1
		}
		stall.Queueing = time.Duration(float64(lat) * over * p.cfg.SaturationFactor)
		lat += stall.Queueing
		p.recordSaturation(now, util)
	}
	stall.Total = lat + tier
	p.tr.Record(telemetry.Event{
		At: now, Dur: stall.Total, Kind: telemetry.KindLinkTransfer, Actor: "link",
		Value: total, Aux: int64(Recall),
	})
	return stall, nil
}

// SharedPages reports how many pages of a region's synthetic owner the
// pool-side memory node still holds under ClassShared (equal to what was
// admitted at produce time; 0 without a node).
func (p *Pool) SharedPages(owner, fn string) int {
	if p.node == nil {
		return 0
	}
	return p.node.OwnerPages(owner, fn, memnode.ClassShared)
}
