package rmem

import (
	"errors"
	"testing"

	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// TestWriteBreakOwnerPrivatizes covers the pool side of a CoW unmerge: the
// dirty pages' master content crosses the link (a recall-shaped fetch, flow
// direction 0 so occupancy conserves), the private writeback rides the offload
// link, and the byte ledger never moves because the owner's holdings are
// unchanged.
func TestWriteBreakOwnerPrivatizes(t *testing.T) {
	p := nodePool(memnode.Config{
		MergeScope: memnode.MergeTenant,
		TenantOf:   func(string) string { return "t0" },
	})
	tl := timeseries.NewRecorder(timeseries.Config{})
	p.InstrumentTimeline(tl)

	var counts ClassCounts
	counts[memnode.ClassRuntime] = 100
	for _, owner := range []string{"c0", "c1"} {
		if acc, _, err := p.OffloadDescribed(0, owner, "f", counts, pageB); err != nil || acc != counts {
			t.Fatalf("owner %s: accepted %v (err %v), want full batch", owner, acc, err)
		}
	}
	if got := p.OwnerClassPages("c0", "f", memnode.ClassRuntime); got != 100 {
		t.Fatalf("OwnerClassPages = %d, want 100", got)
	}

	usedBefore := p.Used()
	recallBefore := p.Meter(Recall).Total()
	offloadBefore := p.Meter(Offload).Total()
	out, err := p.WriteBreakOwner(sec(1), "c0", "f", memnode.ClassRuntime, 30, pageB)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pages != 30 || out.Recalled != 0 {
		t.Fatalf("break = %+v, want 30 privatized, 0 recalled", out)
	}
	if out.Stall.Total <= 0 {
		t.Fatal("break crossed the link twice but stalled nothing")
	}
	if p.Used() != usedBefore {
		t.Fatalf("ledger moved %d -> %d on a privatizing break", usedBefore, p.Used())
	}
	if got := p.Meter(Recall).Total() - recallBefore; got != 30*pageB {
		t.Fatalf("fetch traffic = %d, want %d", got, 30*pageB)
	}
	if got := p.Meter(Offload).Total() - offloadBefore; got != 30*pageB {
		t.Fatalf("writeback traffic = %d, want %d", got, 30*pageB)
	}
	// The unmerge is its own flow kind, and conservation still closes: the
	// fetch is direction-0 (occupancy unchanged), the writeback is the node's
	// internal re-homing, not new pool bytes.
	if tot := tl.FlowTotals(); tot[timeseries.FlowUnmerge] != 30*pageB {
		t.Fatalf("FlowUnmerge total = %d, want %d", tot[timeseries.FlowUnmerge], 30*pageB)
	}
	if a := timeseries.AuditFlows(tl); !a.OK || a.Checks == 0 {
		t.Fatalf("flow audit = %+v", a)
	}

	// A second break of everything clamps to the 70 still shared; breaking a
	// privately-held class is not an unmerge and is free.
	out, err = p.WriteBreakOwner(sec(2), "c0", "f", memnode.ClassRuntime, 200, pageB)
	if err != nil || out.Pages != 70 {
		t.Fatalf("clamped break = %+v (err %v), want 70 pages", out, err)
	}
	out, err = p.WriteBreakOwner(sec(3), "c0", "f", memnode.ClassRuntime, 10, pageB)
	if err != nil || out.Pages != 0 || out.Recalled != 0 || out.Stall.Total != 0 {
		t.Fatalf("break of private pages = %+v (err %v), want free no-op", out, err)
	}
}

// TestWriteBreakOwnerRecallsWhenNodeFull: when the private copy does not fit
// beside the still-referenced master, the remainder leaves the pool like a
// fault — the ledger shrinks by exactly the recalled bytes and the caller
// folds them back into local memory.
func TestWriteBreakOwnerRecallsWhenNodeFull(t *testing.T) {
	p := nodePool(memnode.Config{
		DRAMBytes:          8 * pageB,
		SpillBytes:         2 * pageB,
		DisableCompression: true,
	})
	tl := timeseries.NewRecorder(timeseries.Config{})
	p.InstrumentTimeline(tl)

	var counts ClassCounts
	counts[memnode.ClassRuntime] = 8
	for _, owner := range []string{"c0", "c1"} {
		if acc, _, err := p.OffloadDescribed(0, owner, "f", counts, pageB); err != nil || acc != counts {
			t.Fatalf("owner %s: accepted %v (err %v), want full batch", owner, acc, err)
		}
	}

	out, err := p.WriteBreakOwner(sec(1), "c0", "f", memnode.ClassRuntime, 4, pageB)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pages != 2 || out.Recalled != 2 {
		t.Fatalf("break = %+v, want 2 privatized + 2 recalled", out)
	}
	// 16 pages were held; the 2 recalled left the pool.
	if got, want := p.Used(), int64(14*pageB); got != want {
		t.Fatalf("ledger = %d, want %d", got, want)
	}
	if got, want := p.Used(), p.Node().Stats().LogicalBytes; got != want {
		t.Fatalf("pool ledger %d != node logical %d", got, want)
	}
	if tot := tl.FlowTotals(); tot[timeseries.FlowFault] != 2*pageB {
		t.Fatalf("FlowFault total = %d, want recalled bytes %d", tot[timeseries.FlowFault], 2*pageB)
	}
	if a := timeseries.AuditFlows(tl); !a.OK {
		t.Fatalf("flow audit = %+v", a)
	}
	if err := p.Node().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteBreakOwnerNilNodeAndOutage: without a node there is nothing to
// unmerge and the call is free; during an outage window the typed fault error
// surfaces so the caller buffers the write locally.
func TestWriteBreakOwnerNilNodeAndOutage(t *testing.T) {
	plain := NewPool(Config{})
	out, err := plain.WriteBreakOwner(0, "c0", "f", memnode.ClassRuntime, 10, pageB)
	if err != nil || out.Pages != 0 || out.Recalled != 0 || out.Stall.Total != 0 {
		t.Fatalf("nil-node break = %+v (err %v), want free no-op", out, err)
	}
	if got := plain.OwnerClassPages("c0", "f", memnode.ClassRuntime); got != 0 {
		t.Fatalf("nil-node OwnerClassPages = %d, want 0", got)
	}

	p := NewPool(Config{
		Node: &memnode.Config{},
		Faults: planWith(faultinject.Window{
			Kind: faultinject.LinkFlap, Start: sec(10), End: sec(20),
		}),
	})
	var counts ClassCounts
	counts[memnode.ClassRuntime] = 10
	if _, _, err := p.OffloadDescribed(0, "c0", "f", counts, pageB); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteBreakOwner(sec(15), "c0", "f", memnode.ClassRuntime, 5, pageB); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("mid-flap break err = %v, want ErrLinkDown", err)
	}
	// Holdings untouched by the failed break; after the window it lands.
	if got := p.OwnerClassPages("c0", "f", memnode.ClassRuntime); got != 10 {
		t.Fatalf("failed break moved holdings: %d, want 10", got)
	}
	if out, err := p.WriteBreakOwner(sec(25), "c0", "f", memnode.ClassRuntime, 5, pageB); err != nil || out.Pages != 5 {
		t.Fatalf("post-flap break = %+v (err %v), want 5 pages", out, err)
	}
}
