package rmem

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// This file is the pool's fault-injection seam: health probes against the
// configured faultinject.Plan, degraded-mode bookkeeping, the bounded-retry
// fetch path, and the local-fallback ledger release. Every entry point
// collapses to a nil check when no plan is injected, keeping the fault-free
// path bit-identical to a build without fault injection.

// FaultsPlanned reports whether a non-empty fault plan is injected.
func (p *Pool) FaultsPlanned() bool { return p.flt != nil }

// Healthy reports whether the remote path is usable at now: no link flap
// and no pool-node crash in force. Always true without a fault plan.
func (p *Pool) Healthy(now simtime.Time) bool {
	return p.flt == nil || !p.flt.Unhealthy(now)
}

// Degraded is the complement of Healthy — the degraded-mode predicate the
// governor and schedulers branch on.
func (p *Pool) Degraded(now simtime.Time) bool { return !p.Healthy(now) }

// NodeDown reports whether the pool node itself is crashed at now (the
// cluster reschedules remote-heavy work away while this holds).
func (p *Pool) NodeDown(now simtime.Time) bool {
	return p.flt != nil && p.flt.PoolDown(now)
}

// probeHealth returns the typed error describing the remote path's state at
// now, or nil when healthy. Call sites pass the real current time (it also
// refreshes degraded-mode bookkeeping); use the plan directly to probe
// hypothetical future instants.
func (p *Pool) probeHealth(now simtime.Time) error {
	if p.flt == nil {
		return nil
	}
	p.noteHealth(now)
	if p.flt.PoolDown(now) {
		return ErrPoolDown
	}
	if p.flt.LinkDown(now) {
		return ErrLinkDown
	}
	return nil
}

// noteHealth refreshes edge-triggered degraded-mode state as of the real
// current time: it records enter/exit transitions and keeps the memnode's
// injected tier-storm flag in sync with the plan.
func (p *Pool) noteHealth(now simtime.Time) {
	if p.flt == nil {
		return
	}
	if p.node != nil {
		p.node.SetForceFull(p.flt.TierStorm(now))
	}
	healthy := !p.flt.Unhealthy(now)
	if healthy == p.healthy {
		return
	}
	p.healthy = healthy
	p.met.degraded.Inc()
	kind := telemetry.KindDegradedEnter
	var unhealthy int64 = 1
	if healthy {
		kind = telemetry.KindDegradedExit
		unhealthy = 0
	}
	p.tr.Record(telemetry.Event{At: now, Kind: kind, Actor: "pool"})
	p.tl.SetGauge(now, timeseries.SeriesPoolUnhealthy, poolDims, unhealthy)
}

// traceFaultWindows dumps the plan's schedule into the tracer once, so trace
// viewers show fault windows alongside the activity they perturb.
func (p *Pool) traceFaultWindows(tr *telemetry.Tracer) {
	if p.flt == nil || tr == nil || p.windowsTraced {
		return
	}
	p.windowsTraced = true
	for _, w := range p.flt.Windows() {
		tr.Record(telemetry.Event{
			At: w.Start, Dur: time.Duration(w.End - w.Start),
			Kind: telemetry.KindFaultWindow, Actor: "faultplan",
			Value: int64(w.Factor * 100), Aux: int64(w.Kind),
		})
	}
}

// faultLatencyAt is the per-round fault latency at now, inflated by an
// active latency-spike window.
func (p *Pool) faultLatencyAt(now simtime.Time) time.Duration {
	lat := p.cfg.FaultLatency
	if p.flt != nil {
		if f := p.flt.LatencyFactor(now); f > 1 {
			inj := time.Duration(float64(lat) * (f - 1))
			p.met.injectedStall.Add(inj.Microseconds())
			lat += inj
		}
	}
	return lat
}

// FetchRetry is FaultBatchOwner behind the recovery state machine: when the
// remote path is unhealthy it retries with exponential backoff (starting at
// RetryBackoff, doubling, at most RetryMax attempts) until the plan shows
// the path healthy again, then performs the fetch. The backoff wait is added
// to the returned stall. It gives up with ErrFetchTimeout once the next
// backoff would exceed timeout (0 = no per-call timeout) or the attempt
// budget is spent; the caller then falls back to local swap or cold re-init
// and no pool state has been touched.
func (p *Pool) FetchRetry(now simtime.Time, owner, fn string, counts ClassCounts, pageBytes int64, timeout time.Duration) (FaultStall, error) {
	if p.flt == nil {
		return p.FaultBatchOwner(now, owner, fn, counts, pageBytes), nil
	}
	p.noteHealth(now)
	var waited time.Duration
	backoff := p.cfg.RetryBackoff
	retries := 0
	for {
		if !p.flt.Unhealthy(now + simtime.Time(waited)) {
			// Path (back) up: fetch now. All mutation happens at the real
			// current time; only the plan was probed at future instants.
			stall := p.FaultBatchOwner(now, owner, fn, counts, pageBytes)
			stall.Backoff = waited
			stall.Retries = retries
			stall.Total += waited
			return stall, nil
		}
		retries++
		if retries > p.cfg.RetryMax || (timeout > 0 && waited+backoff > timeout) {
			p.met.fetchTimeouts.Inc()
			p.tl.AddCounter(now, timeseries.SeriesFetchTimeouts, poolDims, 1)
			p.tr.Record(telemetry.Event{
				At: now, Dur: waited, Kind: telemetry.KindFetchTimeout,
				Actor: owner, Fn: fn, Value: int64(counts.Total()),
			})
			err := ErrPoolDown
			if !p.flt.PoolDown(now + simtime.Time(waited)) {
				err = ErrLinkDown
			}
			return FaultStall{Backoff: waited, Retries: retries},
				fmt.Errorf("%w after %d attempts (%v waited): %w", ErrFetchTimeout, retries, waited, err)
		}
		p.met.fetchRetries.Inc()
		p.tr.Record(telemetry.Event{
			At: now + simtime.Time(waited), Kind: telemetry.KindFetchRetry,
			Actor: owner, Fn: fn, Value: int64(retries), Aux: backoff.Microseconds(),
		})
		p.tl.AddCounter(now+simtime.Time(waited), timeseries.SeriesFetchRetries, poolDims, 1)
		waited += backoff
		backoff *= 2
	}
}

// RecallLocal releases a described batch's pool holdings without touching
// the wire: the caller served the pages from its local swap copy (fallback
// after a fetch timeout), so the bytes leave the pool ledger but no transfer
// or fault latency is modeled here. The release lands in the flow ledger as
// a fallback flow stamped at now.
func (p *Pool) RecallLocal(now simtime.Time, owner, fn string, counts ClassCounts, pageBytes int64) {
	if p.node != nil {
		for cls := range counts {
			if counts[cls] == 0 {
				continue
			}
			p.node.Recall(owner, fn, memnode.Class(cls), counts[cls])
		}
	}
	bytes := int64(counts.Total()) * pageBytes
	if bytes > p.used {
		bytes = p.used
	}
	p.used -= bytes
	p.met.usedBytes.Set(p.used)
	p.stageFlow(fn, counts, pageBytes)
	p.recordFlow(now, timeseries.FlowFallback, bytes)
}
