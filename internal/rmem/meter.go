package rmem

import (
	"math"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Meter accumulates transferred bytes and exposes both cumulative totals and
// a recent transfer rate. The rate uses an exponentially decayed average with
// the configured half-life, which is cheap, allocation-free, and smooth under
// the bursty transfer patterns serverless traces produce.
type Meter struct {
	halfLife time.Duration
	total    int64
	last     simtime.Time
	rate     float64 // bytes/sec, decayed
	started  bool
	start    simtime.Time
}

// NewMeter creates a meter whose rate estimate halves after halfLife of
// silence. halfLife must be positive.
func NewMeter(halfLife time.Duration) *Meter {
	if halfLife <= 0 {
		panic("rmem: meter half-life must be positive")
	}
	return &Meter{halfLife: halfLife}
}

// Record notes that n bytes moved at virtual time now.
func (m *Meter) Record(now simtime.Time, n int64) {
	if n < 0 {
		panic("rmem: negative meter record")
	}
	if !m.started {
		m.started = true
		m.start = now
		m.last = now
	}
	m.decayTo(now)
	m.total += n
	// Spread the burst over one half-life for the instantaneous estimate.
	m.rate += float64(n) / m.halfLife.Seconds()
}

func (m *Meter) decayTo(now simtime.Time) {
	if now <= m.last {
		return
	}
	dt := (now - m.last).Seconds()
	m.rate *= math.Exp2(-dt / m.halfLife.Seconds())
	m.last = now
}

// Rate returns the decayed transfer rate in bytes/second as of now.
func (m *Meter) Rate(now simtime.Time) float64 {
	m.decayTo(now)
	return m.rate
}

// Total returns cumulative bytes recorded.
func (m *Meter) Total() int64 { return m.total }

// Average returns the lifetime average rate in bytes/second between the
// first record and now. Zero before any record.
func (m *Meter) Average(now simtime.Time) float64 {
	if !m.started || now <= m.start {
		return 0
	}
	return float64(m.total) / (now - m.start).Seconds()
}

// Governor implements FaaSMem's global bandwidth control for semi-warm
// gradual offloading (paper §6.2): it watches aggregate offload rate on the
// pool link and returns a uniform scale factor that containers apply to
// their per-container offload speeds when the link nears its limit.
type Governor struct {
	pool *Pool
	// Limit is the fraction of link bandwidth the gradual offloader may
	// consume before throttling begins.
	Limit float64
}

// NewGovernor creates a governor over pool with the given bandwidth budget
// fraction (e.g. 0.7 = throttle when offload traffic passes 70% of the link).
func NewGovernor(pool *Pool, limit float64) *Governor {
	if limit <= 0 || limit > 1 {
		limit = 0.7
	}
	return &Governor{pool: pool, Limit: limit}
}

// Scale returns the factor (0, 1] by which every semi-warm container should
// multiply its offload rate right now. At or below the budget it is 1; past
// the budget it shrinks proportionally so aggregate traffic converges to the
// budget ("uniformly reduces the offload speed of all containers").
func (g *Governor) Scale(now simtime.Time) float64 {
	if !g.pool.Healthy(now) {
		// Degraded mode: pause gradual offload entirely while the link or
		// pool node is out; work resumes when the plan shows recovery.
		g.pool.noteHealth(now)
		return 0
	}
	budget := g.Limit * g.pool.bandwidthAt(now)
	rate := g.pool.meter[Offload].Rate(now)
	if rate <= budget || rate == 0 {
		return 1
	}
	return budget / rate
}
