package rmem

import (
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/simtime"
)

// ClassCounts counts a described batch's pages per memnode.Class. Index with
// the memnode.Class constants.
type ClassCounts [memnode.NumClasses]int

// Total sums the per-class counts.
func (c ClassCounts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// OffloadDescribed offloads a batch described by provenance: owner names the
// compute-side container (rack-unique), fn its function, counts the pages per
// lifecycle class. With a memory node attached each class is admitted through
// dedup/quota/capacity and the accepted subset may be smaller than requested;
// without one the whole batch is accepted (or ErrPoolFull, matching
// OffloadBytes). Accepted pages cross the wire in full — dedup saves pool
// DRAM, not link bandwidth (the node merges after receipt, as in UPM-style
// page merging).
func (p *Pool) OffloadDescribed(now simtime.Time, owner, fn string, counts ClassCounts, pageBytes int64) (accepted ClassCounts, done simtime.Time, err error) {
	if p.node == nil {
		p.stageFlow(fn, counts, pageBytes)
		done, err = p.OffloadBytes(now, int64(counts.Total())*pageBytes)
		if err != nil {
			p.clearFlowStage()
			return ClassCounts{}, done, err
		}
		return counts, done, nil
	}
	if err := p.probeHealth(now); err != nil {
		return ClassCounts{}, now, err
	}
	comp0, spill0, merged0 := p.tierFlowsBefore()
	total := 0
	for cls := range counts {
		if counts[cls] == 0 {
			continue
		}
		acc := p.node.Offload(owner, fn, memnode.Class(cls), counts[cls])
		accepted[cls] = acc
		total += acc
	}
	p.recordTierFlows(now, fn, comp0, spill0, merged0, pageBytes)
	if total == 0 {
		return accepted, now, nil
	}
	p.stageFlow(fn, accepted, pageBytes)
	return accepted, p.commitOffload(now, int64(total)*pageBytes), nil
}

// FaultBatchOwner is FaultBatchDetail for a described batch of demand faults:
// with a memory node attached, the recalled pages' provenance releases the
// owner's holdings (freeing the resident copy on last reference) and the
// tier surcharge for compressed/spilled fractions is added to the stall.
func (p *Pool) FaultBatchOwner(now simtime.Time, owner, fn string, counts ClassCounts, pageBytes int64) FaultStall {
	if p.node != nil {
		var tier FaultStall
		for cls := range counts {
			if counts[cls] == 0 {
				continue
			}
			tier.Tier += p.node.Recall(owner, fn, memnode.Class(cls), counts[cls]).Latency
		}
		p.stageFlow(fn, counts, pageBytes)
		stall := p.FaultBatchDetail(now, counts.Total(), pageBytes)
		stall.Tier = tier.Tier
		stall.Total += tier.Tier
		return stall
	}
	p.stageFlow(fn, counts, pageBytes)
	return p.FaultBatchDetail(now, counts.Total(), pageBytes)
}

// RecallDescribed is RecallBytes for a described batch (bulk recalls and
// swap readahead). The node's holdings are released; the tier latency is
// absorbed by the bulk transfer (readahead pages ride the cluster read off
// the request's critical path), so only the completion time is returned.
func (p *Pool) RecallDescribed(now simtime.Time, owner, fn string, counts ClassCounts, pageBytes int64) simtime.Time {
	if p.node != nil {
		for cls := range counts {
			if counts[cls] == 0 {
				continue
			}
			p.node.Recall(owner, fn, memnode.Class(cls), counts[cls])
		}
	}
	p.stageFlow(fn, counts, pageBytes)
	return p.RecallBytes(now, int64(counts.Total())*pageBytes)
}

// DiscardOwner drops a recycled container's remote bytes. With a memory node
// attached its described holdings are released too (refcounts drop; shared
// copies persist while other containers still reference them). bytes is the
// compute side's remote-byte count, which governs the pool's byte ledger; fn
// attributes the discard flow to the container's function (tenant).
func (p *Pool) DiscardOwner(now simtime.Time, owner, fn string, bytes int64) {
	if p.node != nil {
		p.node.DiscardOwner(owner)
	}
	p.stageFlowTenant(fn)
	p.Discard(now, bytes)
}
