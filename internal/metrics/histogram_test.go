package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P95() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if !h.Empty() {
		t.Error("fresh histogram should be Empty")
	}
	h.Add(0)
	if h.Empty() {
		t.Error("histogram with one observation reported Empty")
	}
}

func TestHistogramBadConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero min":     func() { NewHistogram(0, 1, 10) },
		"max <= min":   func() { NewHistogram(1, 1, 10) },
		"zero buckets": func() { NewHistogram(1e-3, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramMeanIsExact(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{0.1, 0.2, 0.3} {
		h.Add(v)
	}
	if math.Abs(h.Mean()-0.2) > 1e-12 {
		t.Fatalf("Mean = %v, want exact 0.2", h.Mean())
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against the exact Sampler on a lognormal workload, bucketed quantiles
	// stay within ~5% relative error (bucket width at 50/decade is 4.7%).
	rng := rand.New(rand.NewSource(5))
	h := NewLatencyHistogram()
	var s Sampler
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()) * 0.1
		h.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := s.Percentile(q * 100)
		approx := h.Quantile(q)
		if rel := math.Abs(approx-exact) / exact; rel > 0.06 {
			t.Errorf("q=%v: approx %v vs exact %v (rel err %.3f)", q, approx, exact, rel)
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0.001, 1, 10)
	h.Add(1e-9) // below min
	h.Add(100)  // above max
	h.Add(-5)   // negative clamps to 0 then min bucket
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %v (exact extremes preserved)", h.Max())
	}
	// Quantiles stay within observed extremes.
	if q := h.Quantile(1); q > 100 {
		t.Fatalf("Q100 = %v exceeds max seen", q)
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	// With one observation, every quantile must return that exact value:
	// the bucket-midpoint estimate clamps to [minSeen, maxSeen], which is a
	// single point.
	h := NewLatencyHistogram()
	h.Add(0.042)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 0.042 {
			t.Errorf("single-sample Quantile(%v) = %v, want 0.042", q, v)
		}
	}
	if h.Min() != 0.042 || h.Max() != 0.042 || h.Mean() != 0.042 {
		t.Fatalf("single-sample stats = min %v max %v mean %v", h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramBoundaryQuantiles(t *testing.T) {
	// q=0 maps to rank 1 (the smallest sample's bucket), so it lands within
	// one bucket width of the exact min; q=1 maps to the largest sample's
	// bucket, whose midpoint overshoots and clamps to the exact max.
	h := NewLatencyHistogram()
	h.Add(0.001)
	h.Add(0.01)
	h.Add(0.1)
	bucketWidth := math.Pow(10, 1.0/50)
	if v := h.Quantile(0); v < 0.001 || v > 0.001*bucketWidth {
		t.Errorf("Quantile(0) = %v, want within one bucket of min 0.001", v)
	}
	if v := h.Quantile(1); v != 0.1 {
		t.Errorf("Quantile(1) = %v, want exact max 0.1", v)
	}
}

func TestHistogramOutOfRangeQuantiles(t *testing.T) {
	// Samples entirely outside [min, max] collapse into the clamp buckets:
	// below-min mass reports at the range floor, above-max mass at the range
	// ceiling — and every quantile stays within the exact observed extremes.
	h := NewHistogram(0.001, 1, 10)
	below, above := 1e-7, 500.0
	for i := 0; i < 10; i++ {
		h.Add(below)
		h.Add(above)
	}
	if v := h.Quantile(0.25); v < below || v > h.lower(1) {
		t.Errorf("below-range Quantile(0.25) = %v, want in first bucket [%v, %v]", v, below, h.lower(1))
	}
	if v := h.Quantile(1); v < 1 || v > above {
		t.Errorf("above-range Quantile(1) = %v, want in overflow [1, %v]", v, above)
	}
	for _, q := range []float64{0, 0.5, 0.75, 0.99} {
		if v := h.Quantile(q); v < below || v > above {
			t.Errorf("Quantile(%v) = %v outside observed [%v, %v]", q, v, below, above)
		}
	}
	if h.Min() != below || h.Max() != above {
		t.Fatalf("exact extremes lost: min %v max %v", h.Min(), h.Max())
	}
}

func TestHistogramQuantilePanics(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
}

func TestHistogramAddDuration(t *testing.T) {
	h := NewLatencyHistogram()
	h.AddDuration(250 * time.Millisecond)
	if math.Abs(h.Mean()-0.25) > 1e-12 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		a.Add(0.1)
		b.Add(10)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if p50 := a.P50(); p50 < 0.09 || p50 > 11 {
		t.Fatalf("merged P50 = %v", p50)
	}
	if a.Max() != 10 || a.Min() != 0.1 {
		t.Fatalf("merged extremes = %v/%v", a.Min(), a.Max())
	}
}

func TestHistogramMergeGeometryMismatchPanics(t *testing.T) {
	a := NewHistogram(0.001, 1, 10)
	b := NewHistogram(0.001, 10, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch did not panic")
		}
	}()
	a.Merge(b)
}

// Property: quantiles are monotone in q and bounded by observed extremes.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHistogram()
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(rng.Float64() * 10)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			if v < h.Min()-1e-12 || v > h.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
