// Package metrics provides the statistical primitives the evaluation relies
// on: latency percentile samplers, empirical CDFs, and time-weighted series
// for memory-usage timelines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Sampler collects float64 observations and answers percentile queries.
// The zero value is ready to use.
type Sampler struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sampler) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration records a duration observation in seconds.
func (s *Sampler) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Sampler) Count() int { return len(s.values) }

// Empty reports whether the sampler has no observations. Mean, Percentile,
// Min and Max all return 0 in that case — indistinguishable from a genuine
// zero observation — so report code should check Empty (or use the
// comma-ok accessors) and render "n/a" instead of a misleading 0.
func (s *Sampler) Empty() bool { return len(s.values) == 0 }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sampler) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the population standard deviation, or 0 with fewer than two
// observations.
func (s *Sampler) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

func (s *Sampler) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks. It returns 0 with no observations and
// panics on an out-of-range p.
func (s *Sampler) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	if len(s.values) == 1 {
		return s.values[0]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// P50, P95 and P99 are the percentiles the paper reports.
func (s *Sampler) P50() float64 { return s.Percentile(50) }

// P95 returns the 95th percentile.
func (s *Sampler) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th percentile.
func (s *Sampler) P99() float64 { return s.Percentile(99) }

// Max returns the largest observation, or 0 with none.
func (s *Sampler) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Min returns the smallest observation, or 0 with none.
func (s *Sampler) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// PercentileOK is Percentile with an explicit ok=false when there are no
// observations, removing the 0-vs-empty ambiguity.
func (s *Sampler) PercentileOK(p float64) (float64, bool) {
	if s.Empty() {
		// Still validate p so misuse is caught on the empty path too.
		if p < 0 || p > 100 {
			panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
		}
		return 0, false
	}
	return s.Percentile(p), true
}

// MinOK is Min with an explicit ok=false when there are no observations.
func (s *Sampler) MinOK() (float64, bool) {
	if s.Empty() {
		return 0, false
	}
	return s.Min(), true
}

// MaxOK is Max with an explicit ok=false when there are no observations.
func (s *Sampler) MaxOK() (float64, bool) {
	if s.Empty() {
		return 0, false
	}
	return s.Max(), true
}

// MeanOK is Mean with an explicit ok=false when there are no observations.
func (s *Sampler) MeanOK() (float64, bool) {
	if s.Empty() {
		return 0, false
	}
	return s.Mean(), true
}

// CDF returns the empirical distribution as (value, cumulative fraction)
// points, one per distinct observation.
func (s *Sampler) CDF() []CDFPoint {
	if len(s.values) == 0 {
		return nil
	}
	s.sort()
	var pts []CDFPoint
	n := float64(len(s.values))
	for i := 0; i < len(s.values); i++ {
		// Collapse runs of equal values to the final cumulative fraction.
		if i+1 < len(s.values) && s.values[i+1] == s.values[i] {
			continue
		}
		pts = append(pts, CDFPoint{Value: s.values[i], Fraction: float64(i+1) / n})
	}
	return pts
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// TimeWeighted tracks a piecewise-constant quantity over virtual time (for
// example a container's local memory bytes) and reports its time-weighted
// average and peak. The zero value is NOT ready; construct with
// NewTimeWeighted so the start time is pinned.
type TimeWeighted struct {
	start   simtime.Time
	last    simtime.Time
	current float64
	area    float64 // integral of value dt (in value·seconds)
	peak    float64
}

// NewTimeWeighted starts tracking at start with the given initial value.
func NewTimeWeighted(start simtime.Time, initial float64) *TimeWeighted {
	return &TimeWeighted{start: start, last: start, current: initial, peak: initial}
}

// Set updates the tracked value at virtual time now. Updates must be
// non-decreasing in time; an out-of-order update panics since it corrupts
// the integral.
func (t *TimeWeighted) Set(now simtime.Time, v float64) {
	if now < t.last {
		panic(fmt.Sprintf("metrics: time-weighted update at %v before %v", now, t.last))
	}
	t.area += t.current * (now - t.last).Seconds()
	t.last = now
	t.current = v
	if v > t.peak {
		t.peak = v
	}
}

// Add adjusts the tracked value by delta at time now.
func (t *TimeWeighted) Add(now simtime.Time, delta float64) {
	t.Set(now, t.current+delta)
}

// Current returns the present value.
func (t *TimeWeighted) Current() float64 { return t.current }

// Peak returns the maximum value seen.
func (t *TimeWeighted) Peak() float64 { return t.peak }

// Average returns the time-weighted mean over [start, now]. With zero
// elapsed time it returns the current value.
func (t *TimeWeighted) Average(now simtime.Time) float64 {
	if now <= t.start {
		return t.current
	}
	area := t.area + t.current*(now-t.last).Seconds()
	return area / (now - t.start).Seconds()
}

// Series records (time, value) samples for timeline figures (Fig. 6, 13).
type Series struct {
	Times  []simtime.Time
	Values []float64
}

// Append adds one sample.
func (s *Series) Append(at simtime.Time, v float64) {
	s.Times = append(s.Times, at)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// MB converts bytes to megabytes (10^6) for display parity with the paper.
func MB(bytes int64) float64 { return float64(bytes) / 1e6 }

// MiB converts bytes to mebibytes.
func MiB(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// GiB converts bytes to gibibytes.
func GiB(bytes int64) float64 { return float64(bytes) / (1 << 30) }

// Pearson computes the Pearson correlation coefficient between two
// equal-length samples, the statistic behind the paper's §8.6 claims
// ("positively correlated with the request loads", "a negative correlation
// with the standard deviation of request intervals"). It returns 0 for
// fewer than two points or zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
