package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSamplerEmpty(t *testing.T) {
	var s Sampler
	if s.Count() != 0 || s.Mean() != 0 || s.P95() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sampler should report zeros")
	}
	if s.CDF() != nil {
		t.Fatal("empty sampler CDF should be nil")
	}
}

func TestSamplerMeanAndExtremes(t *testing.T) {
	var s Sampler
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestSamplerStddev(t *testing.T) {
	var s Sampler
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", got)
	}
	var one Sampler
	one.Add(5)
	if one.Stddev() != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sampler
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50.5, 95: 95.05, 100: 100}
	for p, want := range cases {
		if got := s.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	var s Sampler
	s.Add(7)
	for _, p := range []float64{0, 50, 95, 100} {
		if s.Percentile(p) != 7 {
			t.Errorf("P%v of single value = %v", p, s.Percentile(p))
		}
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	var s Sampler
	s.Add(1)
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			s.Percentile(p)
		}()
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sampler
	s.Add(10)
	_ = s.P50()
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Errorf("Min after late Add = %v, want 1", got)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sampler
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Errorf("AddDuration stored %v, want 1.5", s.Mean())
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sampler
	for _, v := range []float64{3, 1, 2, 2, 5} {
		s.Add(v)
	}
	pts := s.CDF()
	if len(pts) != 4 {
		t.Fatalf("CDF has %d points, want 4 distinct values", len(pts))
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Errorf("final CDF fraction = %v, want 1", pts[len(pts)-1].Fraction)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
			t.Errorf("CDF not strictly increasing at %d: %+v", i, pts)
		}
	}
	// Duplicate value 2 collapses to cumulative 3/5.
	if pts[1].Value != 2 || pts[1].Fraction != 0.6 {
		t.Errorf("dup point = %+v, want {2, 0.6}", pts[1])
	}
}

// Property: percentiles are order statistics — P0 = min, P100 = max, and
// monotone in p.
func TestPercentileProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sampler
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		if s.Percentile(0) != vals[0] || s.Percentile(100) != vals[n-1] {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	tw := NewTimeWeighted(0, 100)
	tw.Set(10*time.Second, 200) // 100 for 10s
	tw.Set(20*time.Second, 0)   // 200 for 10s
	// Average over [0, 20s]: (100*10 + 200*10) / 20 = 150.
	if got := tw.Average(20 * time.Second); math.Abs(got-150) > 1e-9 {
		t.Errorf("Average = %v, want 150", got)
	}
	// Continue to 40s at value 0: (3000 + 0) / 40 = 75.
	if got := tw.Average(40 * time.Second); math.Abs(got-75) > 1e-9 {
		t.Errorf("Average(40s) = %v, want 75", got)
	}
}

func TestTimeWeightedPeakAndCurrent(t *testing.T) {
	tw := NewTimeWeighted(0, 5)
	tw.Add(time.Second, 10)
	tw.Add(2*time.Second, -12)
	if tw.Current() != 3 {
		t.Errorf("Current = %v, want 3", tw.Current())
	}
	if tw.Peak() != 15 {
		t.Errorf("Peak = %v, want 15", tw.Peak())
	}
}

func TestTimeWeightedZeroElapsed(t *testing.T) {
	tw := NewTimeWeighted(time.Second, 42)
	if tw.Average(time.Second) != 42 {
		t.Errorf("zero-elapsed average = %v, want current", tw.Average(time.Second))
	}
}

func TestTimeWeightedOutOfOrderPanics(t *testing.T) {
	tw := NewTimeWeighted(0, 0)
	tw.Set(10*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Set did not panic")
		}
	}()
	tw.Set(5*time.Second, 2)
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append(time.Second, 1)
	s.Append(2*time.Second, 4)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Times[1] != 2*time.Second || s.Values[1] != 4 {
		t.Fatalf("sample 1 = (%v, %v)", s.Times[1], s.Values[1])
	}
}

func TestUnitConversions(t *testing.T) {
	if MB(2_000_000) != 2 {
		t.Errorf("MB = %v", MB(2_000_000))
	}
	if MiB(2<<20) != 2 {
		t.Errorf("MiB = %v", MiB(2<<20))
	}
	if GiB(3<<30) != 3 {
		t.Errorf("GiB = %v", GiB(3<<30))
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, up); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive = %v", got)
	}
	if got := Pearson(xs, down); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative = %v", got)
	}
	if Pearson(xs, []float64{5, 5, 5, 5, 5}) != 0 {
		t.Error("zero variance should be 0")
	}
	if Pearson(xs, xs[:3]) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty should be 0")
	}
	// Noisy positive relationship stays clearly positive.
	noisy := []float64{2.2, 3.7, 6.1, 8.4, 9.8}
	if got := Pearson(xs, noisy); got < 0.9 {
		t.Errorf("noisy positive = %v, want > 0.9", got)
	}
}

func TestSamplerEmptyAccessors(t *testing.T) {
	var s Sampler
	if !s.Empty() {
		t.Error("fresh sampler should be empty")
	}
	if _, ok := s.PercentileOK(95); ok {
		t.Error("PercentileOK on empty sampler reported ok")
	}
	if _, ok := s.MinOK(); ok {
		t.Error("MinOK on empty sampler reported ok")
	}
	if _, ok := s.MaxOK(); ok {
		t.Error("MaxOK on empty sampler reported ok")
	}
	if _, ok := s.MeanOK(); ok {
		t.Error("MeanOK on empty sampler reported ok")
	}

	// A genuine zero observation is distinguishable from "no observations".
	s.Add(0)
	if s.Empty() {
		t.Error("sampler with one zero observation reported empty")
	}
	if v, ok := s.MeanOK(); !ok || v != 0 {
		t.Errorf("MeanOK = (%v, %v), want (0, true)", v, ok)
	}

	s.Add(4)
	if v, ok := s.MinOK(); !ok || v != 0 {
		t.Errorf("MinOK = (%v, %v)", v, ok)
	}
	if v, ok := s.MaxOK(); !ok || v != 4 {
		t.Errorf("MaxOK = (%v, %v)", v, ok)
	}
	if v, ok := s.PercentileOK(50); !ok || v != s.P50() {
		t.Errorf("PercentileOK(50) = (%v, %v), want P50 %v", v, ok, s.P50())
	}
}

func TestPercentileOKValidatesOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PercentileOK(-1) on empty sampler should still panic")
		}
	}()
	var s Sampler
	s.PercentileOK(-1)
}
