package metrics_test

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/metrics"
)

// ExampleSampler demonstrates the percentile accessors the evaluation uses.
func ExampleSampler() {
	var s metrics.Sampler
	for i := 1; i <= 100; i++ {
		s.AddDuration(time.Duration(i) * time.Millisecond)
	}
	fmt.Printf("P50 %.4fs P95 %.4fs P99 %.4fs\n", s.P50(), s.P95(), s.P99())
	// Output:
	// P50 0.0505s P95 0.0950s P99 0.0990s
}

// ExampleTimeWeighted shows memory-usage averaging over virtual time: the
// value's duration matters, not the number of updates.
func ExampleTimeWeighted() {
	tw := metrics.NewTimeWeighted(0, 100)
	tw.Set(10*time.Second, 0) // 100 MB for 10 s, then 0 for 10 s
	fmt.Printf("avg over 20s: %.0f\n", tw.Average(20*time.Second))
	// Output:
	// avg over 20s: 50
}

// ExampleHistogram shows the bounded-memory latency histogram.
func ExampleHistogram() {
	h := metrics.NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Add(0.1)
	}
	h.Add(5.0) // one outlier
	fmt.Printf("count %d, max %.1fs, P99 within 5%% of 0.1: %v\n",
		h.Count(), h.Max(), h.P99() > 0.095 && h.P99() < 0.105)
	// Output:
	// count 1001, max 5.0s, P99 within 5% of 0.1: true
}
