package metrics

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-bucketed latency histogram with bounded memory,
// suitable for runs too long to keep every sample (the plain Sampler stores
// all observations; this trades ~1% relative resolution for O(1) space).
//
// Buckets are spaced geometrically between Min and Max with Precision
// buckets per decade. Values below Min clamp into the first bucket, above
// Max into the overflow bucket.
type Histogram struct {
	min, max float64
	perDec   int
	counts   []uint64
	total    uint64
	sum      float64
	maxSeen  float64
	minSeen  float64
}

// NewHistogram creates a histogram covering [min, max] with bucketsPerDecade
// resolution. Typical latency use: NewHistogram(1e-4, 1e3, 50) covers 100 µs
// to 1000 s at ~4.7% bucket width.
func NewHistogram(min, max float64, bucketsPerDecade int) *Histogram {
	if min <= 0 || max <= min {
		panic(fmt.Sprintf("metrics: invalid histogram range [%g, %g]", min, max))
	}
	if bucketsPerDecade <= 0 {
		panic("metrics: bucketsPerDecade must be positive")
	}
	decades := math.Log10(max / min)
	n := int(math.Ceil(decades*float64(bucketsPerDecade))) + 1
	return &Histogram{
		min:     min,
		max:     max,
		perDec:  bucketsPerDecade,
		counts:  make([]uint64, n+1), // +1 overflow
		minSeen: math.Inf(1),
	}
}

// NewLatencyHistogram covers 100 µs – 1000 s at 50 buckets/decade, fitting
// every latency this simulator produces.
func NewLatencyHistogram() *Histogram { return NewHistogram(1e-4, 1e3, 50) }

func (h *Histogram) bucket(v float64) int {
	if v <= h.min {
		return 0
	}
	if v >= h.max {
		return len(h.counts) - 1
	}
	idx := int(math.Log10(v/h.min) * float64(h.perDec))
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 2
	}
	return idx
}

// lower returns the lower bound of bucket i.
func (h *Histogram) lower(i int) float64 {
	return h.min * math.Pow(10, float64(i)/float64(h.perDec))
}

// Add records one observation (negative values clamp to the first bucket).
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	h.counts[h.bucket(v)]++
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
}

// AddDuration records a duration in seconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Empty reports whether the histogram has no observations (see
// Sampler.Empty for why callers should check before rendering a 0).
func (h *Histogram) Empty() bool { return h.total == 0 }

// Mean returns the exact arithmetic mean (sums are exact; only quantiles are
// bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observation seen (exact).
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.maxSeen
}

// Min returns the smallest observation seen (exact).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.minSeen
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with bucket
// resolution. It returns 0 with no observations and panics on out-of-range q.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Midpoint of the bucket, clamped to observed extremes.
			lo := h.lower(i)
			hi := h.lower(i + 1)
			v := (lo + hi) / 2
			if v > h.maxSeen {
				v = h.maxSeen
			}
			if v < h.minSeen {
				v = h.minSeen
			}
			return v
		}
	}
	return h.maxSeen
}

// P50, P95 and P99 match the Sampler's accessors.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th percentile estimate.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th percentile estimate.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Merge accumulates other into h. Both histograms must share a geometry.
func (h *Histogram) Merge(other *Histogram) {
	if h.min != other.min || h.max != other.max || h.perDec != other.perDec {
		panic("metrics: merging histograms with different geometry")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.maxSeen > h.maxSeen {
			h.maxSeen = other.maxSeen
		}
		if other.minSeen < h.minSeen {
			h.minSeen = other.minSeen
		}
	}
}
