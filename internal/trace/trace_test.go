package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

func secs(vals ...float64) []simtime.Time {
	out := make([]simtime.Time, len(vals))
	for i, v := range vals {
		out[i] = simtime.Time(v * float64(time.Second))
	}
	return out
}

func TestDailyRateAndClass(t *testing.T) {
	f := &Function{ID: "f", Invocations: make([]simtime.Time, 600)}
	if got := f.DailyRate(24 * time.Hour); got != 600 {
		t.Fatalf("DailyRate = %v, want 600", got)
	}
	if f.Class(24*time.Hour) != HighLoad {
		t.Fatal("600/day should be high load")
	}
	lo := &Function{ID: "g", Invocations: make([]simtime.Time, 10)}
	if lo.Class(24*time.Hour) != LowLoad {
		t.Fatal("10/day should be low load")
	}
	mid := &Function{ID: "h", Invocations: make([]simtime.Time, 100)}
	if mid.Class(24*time.Hour) != MediumLoad {
		t.Fatal("100/day should be medium load")
	}
}

func TestClassifyBoundaries(t *testing.T) {
	if Classify(513) != HighLoad || Classify(512) != MediumLoad {
		t.Error("high boundary should be > 512")
	}
	if Classify(63.9) != LowLoad || Classify(64) != MediumLoad {
		t.Error("low boundary should be < 64")
	}
}

func TestLoadClassString(t *testing.T) {
	if LowLoad.String() != "low" || MediumLoad.String() != "medium" || HighLoad.String() != "high" {
		t.Error("LoadClass strings wrong")
	}
}

func TestIntervalStats(t *testing.T) {
	f := &Function{ID: "f", Invocations: secs(0, 10, 20, 30)}
	st := f.Intervals()
	if st.Mean != 10*time.Second {
		t.Errorf("Mean = %v, want 10s", st.Mean)
	}
	if st.Stddev != 0 {
		t.Errorf("Stddev = %v, want 0 for uniform gaps", st.Stddev)
	}
	// Fewer than 2 invocations → zero stats.
	if (&Function{Invocations: secs(5)}).Intervals() != (IntervalStats{}) {
		t.Error("single invocation should yield zero stats")
	}
}

func TestIntervalStatsVariance(t *testing.T) {
	f := &Function{ID: "f", Invocations: secs(0, 1, 11)} // gaps 1s, 10s
	st := f.Intervals()
	if st.Mean != 5500*time.Millisecond {
		t.Errorf("Mean = %v, want 5.5s", st.Mean)
	}
	if st.Stddev != 4500*time.Millisecond {
		t.Errorf("Stddev = %v, want 4.5s", st.Stddev)
	}
}

func TestRequestsPerMinute(t *testing.T) {
	f := &Function{Invocations: make([]simtime.Time, 120)}
	if got := f.RequestsPerMinute(time.Hour); got != 2 {
		t.Errorf("RPM = %v, want 2", got)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := &Trace{Duration: time.Hour, Functions: []*Function{
		{ID: "a", Invocations: secs(1, 2)},
		{ID: "b", Invocations: secs(3)},
	}}
	if tr.TotalInvocations() != 3 {
		t.Errorf("TotalInvocations = %d", tr.TotalInvocations())
	}
	if tr.Find("b") == nil || tr.Find("zzz") != nil {
		t.Error("Find misbehaves")
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Duration: time.Hour, Functions: []*Function{{ID: "a", Invocations: secs(1, 2)}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []*Trace{
		{Duration: 0},
		{Duration: time.Hour, Functions: []*Function{{ID: ""}}},
		{Duration: time.Hour, Functions: []*Function{{ID: "a"}, {ID: "a"}}},
		{Duration: time.Hour, Functions: []*Function{{ID: "a", Invocations: secs(5, 3)}}},
		{Duration: time.Hour, Functions: []*Function{{ID: "a", Invocations: secs(4000)}}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Duration: time.Hour, Functions: []*Function{
		{ID: "a", Invocations: secs(10, 100, 2000)},
		{ID: "b", Invocations: secs(5)},
	}}
	s := tr.Slice(60*time.Second, 40*time.Minute)
	if s.Duration != 39*time.Minute {
		t.Errorf("sliced duration = %v", s.Duration)
	}
	if len(s.Functions) != 1 || s.Functions[0].ID != "a" {
		t.Fatalf("sliced functions = %+v", s.Functions)
	}
	if got := s.Functions[0].Invocations; len(got) != 2 || got[0] != 40*time.Second || got[1] != 1940*time.Second {
		t.Errorf("rebased invocations = %v", got)
	}
	// Slicing beyond the trace end clamps.
	if c := tr.Slice(0, 2*time.Hour); c.Duration != time.Hour {
		t.Errorf("clamped duration = %v", c.Duration)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{NumFunctions: 20, Duration: 2 * time.Hour}
	a := Generate(cfg, 7)
	b := Generate(cfg, 7)
	if a.TotalInvocations() != b.TotalInvocations() {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Functions {
		if len(a.Functions[i].Invocations) != len(b.Functions[i].Invocations) {
			t.Fatalf("function %d lengths differ", i)
		}
	}
	c := Generate(cfg, 8)
	if a.TotalInvocations() == c.TotalInvocations() {
		t.Log("different seeds produced equal totals (unlikely but possible)")
	}
}

func TestGenerateValidates(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 50, Duration: 6 * time.Hour}, 3)
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Functions) != 50 {
		t.Fatalf("generated %d functions, want 50", len(tr.Functions))
	}
}

func TestGenerateDefaults(t *testing.T) {
	tr := Generate(GenConfig{}, 1)
	if len(tr.Functions) != 424 {
		t.Fatalf("default functions = %d, want 424", len(tr.Functions))
	}
	if tr.Duration != 24*time.Hour {
		t.Fatalf("default duration = %v", tr.Duration)
	}
}

func TestGeneratePopulatesAllClasses(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 424, Duration: 24 * time.Hour}, 11)
	byClass := tr.ByClass()
	for _, c := range []LoadClass{LowLoad, MediumLoad, HighLoad} {
		if len(byClass[c]) == 0 {
			t.Errorf("no %v-load functions generated", c)
		}
	}
}

func TestGenerateFunctionMeanGap(t *testing.T) {
	f := GenerateFunction("f", 10*time.Hour, time.Minute, false, 5)
	// Expect roughly 600 invocations over 10h at 1/min; tolerate ±40%.
	n := len(f.Invocations)
	if n < 360 || n > 840 {
		t.Errorf("invocations = %d, want ~600", n)
	}
}

func TestGenerateBurstyHasHigherVariance(t *testing.T) {
	smooth := GenerateFunction("s", 12*time.Hour, 30*time.Second, false, 9)
	bursty := GenerateFunction("b", 12*time.Hour, 30*time.Second, true, 9)
	fs, fb := smooth.Intervals(), bursty.Intervals()
	// Bursty traffic should have a larger coefficient of variation.
	cvS := float64(fs.Stddev) / float64(fs.Mean)
	cvB := float64(fb.Stddev) / float64(fb.Mean)
	if cvB <= cvS {
		t.Errorf("bursty CV %.2f not larger than smooth CV %.2f", cvB, cvS)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 5, Duration: time.Hour}, 2)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalInvocations() != tr.TotalInvocations() || got.Duration != tr.Duration {
		t.Fatal("round trip changed the trace")
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{\"duration\": -5}")); err == nil {
		t.Error("invalid trace decoded without error")
	}
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	tr := Generate(GenConfig{NumFunctions: 3, Duration: time.Hour}, 4)
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalInvocations() != tr.TotalInvocations() {
		t.Fatal("Save/Load changed the trace")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestConcat(t *testing.T) {
	a := &Trace{Duration: time.Hour, Functions: []*Function{{ID: "f", Invocations: secs(1)}}}
	b := &Trace{Duration: 2 * time.Hour, Functions: []*Function{
		{ID: "f", Invocations: secs(2)},
		{ID: "g", Invocations: secs(3)},
	}}
	out := Concat(a, b, nil)
	if out.Duration != 2*time.Hour {
		t.Fatalf("duration = %v", out.Duration)
	}
	if len(out.Functions) != 3 {
		t.Fatalf("functions = %d", len(out.Functions))
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("concat result invalid: %v", err)
	}
	if out.Find("f~1") == nil {
		t.Fatal("ID collision not disambiguated")
	}
	// Deep copy: mutating the result must not touch the inputs.
	out.Functions[0].Invocations[0] = 0
	if a.Functions[0].Invocations[0] != time.Second {
		t.Fatal("Concat aliased input slices")
	}
}

func TestTimeScale(t *testing.T) {
	tr := &Trace{Duration: time.Hour, Functions: []*Function{{ID: "f", Invocations: secs(10, 20)}}}
	half := tr.TimeScale(0.5)
	if half.Duration != 30*time.Minute {
		t.Fatalf("scaled duration = %v", half.Duration)
	}
	if half.Functions[0].Invocations[0] != 5*time.Second {
		t.Fatalf("scaled invocation = %v", half.Functions[0].Invocations[0])
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if tr.Functions[0].Invocations[0] != 10*time.Second {
		t.Fatal("TimeScale mutated the input")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive scale did not panic")
			}
		}()
		tr.TimeScale(0)
	}()
}
