package trace

import (
	"math"
	"testing"
	"time"
)

func TestAnalyzePeriodicFunction(t *testing.T) {
	f := &Function{ID: "p", Invocations: secs(0, 10, 20, 30, 40)}
	a := Analyze(f, time.Minute)
	if a.Invocations != 5 {
		t.Fatalf("invocations = %d", a.Invocations)
	}
	if a.MeanGap != 10*time.Second || a.GapStddev != 0 {
		t.Fatalf("gaps = %v ± %v", a.MeanGap, a.GapStddev)
	}
	if a.CV != 0 {
		t.Fatalf("CV = %v, want 0 for periodic", a.CV)
	}
	// Perfectly periodic → burstiness -1.
	if a.Burstiness != -1 {
		t.Fatalf("burstiness = %v, want -1", a.Burstiness)
	}
}

func TestAnalyzeBurstyExceedsSmooth(t *testing.T) {
	smooth := GenerateFunction("s", 6*time.Hour, 30*time.Second, false, 3)
	bursty := GenerateFunction("b", 6*time.Hour, 30*time.Second, true, 3)
	as := Analyze(smooth, 6*time.Hour)
	ab := Analyze(bursty, 6*time.Hour)
	if ab.Burstiness <= as.Burstiness {
		t.Fatalf("bursty burstiness %v <= smooth %v", ab.Burstiness, as.Burstiness)
	}
	if ab.PeakToMean <= as.PeakToMean {
		t.Fatalf("bursty peak/mean %v <= smooth %v", ab.PeakToMean, as.PeakToMean)
	}
	// Poisson-ish arrivals sit near burstiness 0.
	if math.Abs(as.Burstiness) > 0.35 {
		t.Fatalf("smooth burstiness = %v, want near 0", as.Burstiness)
	}
}

func TestAnalyzeEmptyFunction(t *testing.T) {
	a := Analyze(&Function{ID: "e"}, time.Hour)
	if a.Invocations != 0 || a.CV != 0 || a.PeakToMean != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

func TestAnalyzeTraceCoversAll(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 12, Duration: 2 * time.Hour}, 8)
	as := AnalyzeTrace(tr)
	if len(as) != 12 {
		t.Fatalf("analyses = %d", len(as))
	}
	for i, a := range as {
		if a.Invocations != len(tr.Functions[i].Invocations) {
			t.Fatalf("analysis %d count mismatch", i)
		}
	}
}

func TestPeakToMeanDegenerate(t *testing.T) {
	if got := peakToMean(nil, time.Hour, time.Minute); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := peakToMean(secs(1), 0, time.Minute); got != 0 {
		t.Fatalf("zero window = %v", got)
	}
}
