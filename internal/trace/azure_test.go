package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleAzureCSV = `app,func,end_timestamp,duration
appA,funcX,10.5,0.5
appA,funcX,20.0,1.0
appA,funcY,5.25,0.25
appB,funcZ,100.0,2.0
`

func TestReadAzureCSV(t *testing.T) {
	tr, durs, err := ReadAzureCSV(strings.NewReader(sampleAzureCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Functions) != 3 {
		t.Fatalf("functions = %d, want 3", len(tr.Functions))
	}
	if tr.TotalInvocations() != 4 {
		t.Fatalf("invocations = %d, want 4", tr.TotalInvocations())
	}
	x := tr.Find("funcX")
	if x == nil || len(x.Invocations) != 2 {
		t.Fatalf("funcX = %+v", x)
	}
	// Start = end - duration.
	if x.Invocations[0] != 10*time.Second {
		t.Errorf("funcX first start = %v, want 10s", x.Invocations[0])
	}
	if x.Invocations[1] != 19*time.Second {
		t.Errorf("funcX second start = %v, want 19s", x.Invocations[1])
	}
	if got := durs["funcX"]; len(got) != 2 || got[0] != 500*time.Millisecond {
		t.Errorf("funcX durations = %v", got)
	}
	// Window covers the last end timestamp.
	if tr.Duration < 100*time.Second {
		t.Errorf("duration = %v, want >= 100s", tr.Duration)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAzureCSVHeaderless(t *testing.T) {
	tr, _, err := ReadAzureCSV(strings.NewReader("a,f,1.0,0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalInvocations() != 1 {
		t.Fatalf("invocations = %d", tr.TotalInvocations())
	}
}

func TestReadAzureCSVSortsUnorderedRows(t *testing.T) {
	csv := "a,f,20.0,1.0\na,f,5.0,1.0\n"
	tr, _, err := ReadAzureCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	inv := tr.Find("f").Invocations
	if inv[0] != 4*time.Second || inv[1] != 19*time.Second {
		t.Fatalf("invocations not sorted: %v", inv)
	}
}

func TestReadAzureCSVClampsNegativeStart(t *testing.T) {
	// duration > end: start clamps to 0.
	tr, _, err := ReadAzureCSV(strings.NewReader("a,f,1.0,5.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Find("f").Invocations[0] != 0 {
		t.Fatal("start not clamped to 0")
	}
}

func TestReadAzureCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"a,f\n",               // too few fields
		"a,f,xx,0.5\na,b,c\n", // bad number beyond header tolerance
		"a,f,1.0,-2.0\n",      // negative duration
		"app,func,end,dur\n",  // header only, no data
	}
	for i, c := range cases {
		if _, _, err := ReadAzureCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestLoadAzureCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "azure.csv")
	if err := writeFile(path, sampleAzureCSV); err != nil {
		t.Fatal(err)
	}
	tr, _, err := LoadAzureCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalInvocations() != 4 {
		t.Fatalf("invocations = %d", tr.TotalInvocations())
	}
	if _, _, err := LoadAzureCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("mean = %v, want 2s", got)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
