package trace

import (
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// KeepAliveResult summarizes a keep-alive container-pool simulation of one
// function's timeline — the analytic behind the paper's Figures 1, 5 and 14
// and the semi-warm timing data of §6.1.
type KeepAliveResult struct {
	// ColdStarts counts requests that found no idle warm container.
	ColdStarts int
	// WarmStarts counts requests served by an idle warm container.
	WarmStarts int
	// ActiveTime is total container time spent executing requests.
	ActiveTime time.Duration
	// InactiveTime is total container time spent idle in keep-alive.
	InactiveTime time.Duration
	// RequestsPerContainer lists how many requests each container served.
	RequestsPerContainer []int
	// ReusedIntervals lists, for every warm start, how long the container
	// had been idle when the request arrived (the "container reused
	// interval" distribution of §6.1).
	ReusedIntervals []time.Duration
	// ContainerLifetimes lists each container's total lifetime from launch
	// to recycling.
	ContainerLifetimes []time.Duration
}

// Lifetime is active plus inactive container time.
func (r KeepAliveResult) Lifetime() time.Duration { return r.ActiveTime + r.InactiveTime }

// InactiveFraction is the share of container lifetime spent idle — the
// paper's "memory inactive time" (89.2% at a 10-minute timeout).
func (r KeepAliveResult) InactiveFraction() float64 {
	lt := r.Lifetime()
	if lt == 0 {
		return 0
	}
	return float64(r.InactiveTime) / float64(lt)
}

// ColdStartRatio is the fraction of requests that cold-started.
func (r KeepAliveResult) ColdStartRatio() float64 {
	total := r.ColdStarts + r.WarmStarts
	if total == 0 {
		return 0
	}
	return float64(r.ColdStarts) / float64(total)
}

// Merge accumulates other into r.
func (r *KeepAliveResult) Merge(other KeepAliveResult) {
	r.ColdStarts += other.ColdStarts
	r.WarmStarts += other.WarmStarts
	r.ActiveTime += other.ActiveTime
	r.InactiveTime += other.InactiveTime
	r.RequestsPerContainer = append(r.RequestsPerContainer, other.RequestsPerContainer...)
	r.ReusedIntervals = append(r.ReusedIntervals, other.ReusedIntervals...)
	r.ContainerLifetimes = append(r.ContainerLifetimes, other.ContainerLifetimes...)
}

// container tracks one simulated container's occupancy.
type kaContainer struct {
	busyUntil simtime.Time // executing until then
	idleSince simtime.Time // start of current idle period (== busyUntil)
	launched  simtime.Time
	requests  int
	active    time.Duration
}

// SimulateKeepAlive replays one function's invocations against an elastic
// container pool with the given execution time per request and keep-alive
// timeout. Requests that find an idle warm container reuse it (earliest-idle
// first, matching typical FIFO reuse); otherwise a new container launches.
// Idle containers are recycled after timeout.
func SimulateKeepAlive(invocations []simtime.Time, execTime, timeout time.Duration) KeepAliveResult {
	var res KeepAliveResult
	var pool []*kaContainer // containers, alive

	retire := func(c *kaContainer, at simtime.Time) {
		res.ActiveTime += c.active
		res.InactiveTime += (at - c.launched) - c.active
		res.RequestsPerContainer = append(res.RequestsPerContainer, c.requests)
		res.ContainerLifetimes = append(res.ContainerLifetimes, at-c.launched)
	}

	for _, at := range invocations {
		// Expire idle containers whose keep-alive lapsed before this request.
		alive := pool[:0]
		for _, c := range pool {
			if c.busyUntil <= at && at-c.idleSince > timeout {
				retire(c, c.idleSince+timeout)
				continue
			}
			alive = append(alive, c)
		}
		pool = alive

		// Pick the idle container that has waited longest.
		var pick *kaContainer
		for _, c := range pool {
			if c.busyUntil <= at && (pick == nil || c.idleSince < pick.idleSince) {
				pick = c
			}
		}
		if pick != nil {
			res.WarmStarts++
			res.ReusedIntervals = append(res.ReusedIntervals, (at - pick.idleSince))
		} else {
			res.ColdStarts++
			pick = &kaContainer{launched: at}
			pool = append(pool, pick)
		}
		pick.requests++
		pick.active += execTime
		pick.busyUntil = at + execTime
		pick.idleSince = pick.busyUntil
	}

	// Drain: every surviving container idles out after its timeout.
	for _, c := range pool {
		end := c.idleSince + timeout
		retire(c, end)
	}
	return res
}

// SimulateTraceKeepAlive runs SimulateKeepAlive for every function and
// merges the results.
func SimulateTraceKeepAlive(t *Trace, execTime, timeout time.Duration) KeepAliveResult {
	return SimulateTraceKeepAliveFunc(t, func(int, *Function) time.Duration { return execTime }, timeout)
}

// SimulateTraceKeepAliveFunc is SimulateTraceKeepAlive with a per-function
// execution time, for traces whose functions have heterogeneous durations
// (the Azure trace's durations span milliseconds to minutes, which shapes
// the Fig. 1 inactive-time curve at short keep-alive timeouts).
func SimulateTraceKeepAliveFunc(t *Trace, execOf func(i int, f *Function) time.Duration, timeout time.Duration) KeepAliveResult {
	var res KeepAliveResult
	for i, f := range t.Functions {
		res.Merge(SimulateKeepAlive(f.Invocations, execOf(i, f), timeout))
	}
	return res
}

// ReusedIntervalPercentile returns the p-th percentile of the reused
// intervals (p in [0,100]); zero if there are none. FaaSMem's semi-warm
// timing uses the 99th percentile of this distribution.
func ReusedIntervalPercentile(intervals []time.Duration, p float64) time.Duration {
	if len(intervals) == 0 {
		return 0
	}
	s := make([]time.Duration, len(intervals))
	copy(s, intervals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
