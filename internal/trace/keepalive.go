package trace

import (
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// KeepAliveResult summarizes a keep-alive container-pool simulation of one
// function's timeline — the analytic behind the paper's Figures 1, 5 and 14
// and the semi-warm timing data of §6.1.
type KeepAliveResult struct {
	// ColdStarts counts requests that found no idle warm container.
	ColdStarts int
	// WarmStarts counts requests served by an idle warm container.
	WarmStarts int
	// ActiveTime is total container time spent executing requests.
	ActiveTime time.Duration
	// InactiveTime is total container time spent idle in keep-alive.
	InactiveTime time.Duration
	// RequestsPerContainer lists how many requests each container served.
	RequestsPerContainer []int
	// ReusedIntervals lists, for every warm start, how long the container
	// had been idle when the request arrived (the "container reused
	// interval" distribution of §6.1).
	ReusedIntervals []time.Duration
	// ContainerLifetimes lists each container's total lifetime from launch
	// to recycling.
	ContainerLifetimes []time.Duration
}

// Lifetime is active plus inactive container time.
func (r KeepAliveResult) Lifetime() time.Duration { return r.ActiveTime + r.InactiveTime }

// InactiveFraction is the share of container lifetime spent idle — the
// paper's "memory inactive time" (89.2% at a 10-minute timeout).
func (r KeepAliveResult) InactiveFraction() float64 {
	lt := r.Lifetime()
	if lt == 0 {
		return 0
	}
	return float64(r.InactiveTime) / float64(lt)
}

// ColdStartRatio is the fraction of requests that cold-started.
func (r KeepAliveResult) ColdStartRatio() float64 {
	total := r.ColdStarts + r.WarmStarts
	if total == 0 {
		return 0
	}
	return float64(r.ColdStarts) / float64(total)
}

// Merge accumulates other into r.
func (r *KeepAliveResult) Merge(other KeepAliveResult) {
	r.ColdStarts += other.ColdStarts
	r.WarmStarts += other.WarmStarts
	r.ActiveTime += other.ActiveTime
	r.InactiveTime += other.InactiveTime
	r.RequestsPerContainer = append(r.RequestsPerContainer, other.RequestsPerContainer...)
	r.ReusedIntervals = append(r.ReusedIntervals, other.ReusedIntervals...)
	r.ContainerLifetimes = append(r.ContainerLifetimes, other.ContainerLifetimes...)
}

// container tracks one simulated container's occupancy.
type kaContainer struct {
	busyUntil simtime.Time // executing until then
	idleSince simtime.Time // start of current idle period (== busyUntil)
	launched  simtime.Time
	seq       int // launch order, for deterministic tie-breaking
	requests  int
	active    time.Duration
}

// SimulateKeepAlive replays one function's invocations against an elastic
// container pool with the given execution time per request and keep-alive
// timeout. Requests that find an idle warm container reuse it (earliest-idle
// first, matching typical FIFO reuse); otherwise a new container launches.
// Idle containers are recycled after timeout.
//
// For sorted invocations (the trace invariant) the pool is a FIFO deque
// ordered by idleSince — a container finishing its request is always the
// newest idler, so expiry pops from the front and the longest-idle pick *is*
// the front — which makes the whole replay O(n) instead of the reference's
// O(n·pool). Unsorted timelines fall back to simulateKeepAliveReference.
func SimulateKeepAlive(invocations []simtime.Time, execTime, timeout time.Duration) KeepAliveResult {
	return simulateKeepAlive(invocations, execTime, timeout, true)
}

// SimulateKeepAliveScalars is SimulateKeepAlive minus the per-container
// distribution slices: only the counters and active/inactive times are
// filled. Sweeps that read aggregate ratios alone (Figure 1 runs one
// simulation per trace function per timeout) skip the slice churn entirely.
func SimulateKeepAliveScalars(invocations []simtime.Time, execTime, timeout time.Duration) KeepAliveResult {
	return simulateKeepAlive(invocations, execTime, timeout, false)
}

func simulateKeepAlive(invocations []simtime.Time, execTime, timeout time.Duration, collect bool) KeepAliveResult {
	for i := 1; i < len(invocations); i++ {
		if invocations[i] < invocations[i-1] {
			res := simulateKeepAliveReference(invocations, execTime, timeout)
			if !collect {
				res.RequestsPerContainer = nil
				res.ReusedIntervals = nil
				res.ContainerLifetimes = nil
			}
			return res
		}
	}

	var res KeepAliveResult
	// idle is a FIFO deque of idle containers in ascending idleSince order:
	// drained at pool[head:]. Every idle container by definition has
	// busyUntil == idleSince <= now once its request finished, and new idlers
	// always carry idleSince = at+execTime >= every previous entry.
	var pool []kaContainer
	head := 0
	seq := 0

	retire := func(c *kaContainer, at simtime.Time) {
		res.ActiveTime += c.active
		res.InactiveTime += (at - c.launched) - c.active
		if collect {
			res.RequestsPerContainer = append(res.RequestsPerContainer, c.requests)
			res.ContainerLifetimes = append(res.ContainerLifetimes, at-c.launched)
		}
	}

	for _, at := range invocations {
		// Expire idle containers whose keep-alive lapsed before this request;
		// they are exactly a prefix of the deque.
		for head < len(pool) && at-pool[head].idleSince > timeout {
			retire(&pool[head], pool[head].idleSince+timeout)
			head++
		}

		// The front of the deque has waited longest. On an exact idleSince
		// tie the reference picks the earliest-launched container, so scan
		// the tied prefix for the minimal launch sequence — ties only occur
		// between invocations sharing a timestamp, so the prefix is short.
		var c kaContainer
		if head < len(pool) && pool[head].idleSince <= at {
			pick := head
			for i := head + 1; i < len(pool) &&
				pool[i].idleSince == pool[head].idleSince; i++ {
				if pool[i].seq < pool[pick].seq {
					pick = i
				}
			}
			c = pool[pick]
			copy(pool[head+1:pick+1], pool[head:pick])
			head++
			res.WarmStarts++
			if collect {
				res.ReusedIntervals = append(res.ReusedIntervals, at-c.idleSince)
			}
		} else {
			c = kaContainer{launched: at, seq: seq}
			seq++
			res.ColdStarts++
		}
		c.requests++
		c.active += execTime
		c.busyUntil = at + execTime
		c.idleSince = c.busyUntil
		pool = append(pool, c)

		// Compact the consumed prefix once it dominates the backing array.
		if head > 64 && head > len(pool)/2 {
			n := copy(pool, pool[head:])
			pool = pool[:n]
			head = 0
		}
	}

	// Drain: every surviving container idles out after its timeout.
	for i := head; i < len(pool); i++ {
		retire(&pool[i], pool[i].idleSince+timeout)
	}
	return res
}

// simulateKeepAliveReference is the retired O(n·pool) pool-walk
// implementation, kept as the oracle for the differential tests and as the
// fallback for unsorted timelines. Its per-container bookkeeping defines the
// semantics SimulateKeepAlive must reproduce.
func simulateKeepAliveReference(invocations []simtime.Time, execTime, timeout time.Duration) KeepAliveResult {
	var res KeepAliveResult
	var pool []*kaContainer // containers, alive

	retire := func(c *kaContainer, at simtime.Time) {
		res.ActiveTime += c.active
		res.InactiveTime += (at - c.launched) - c.active
		res.RequestsPerContainer = append(res.RequestsPerContainer, c.requests)
		res.ContainerLifetimes = append(res.ContainerLifetimes, at-c.launched)
	}

	for _, at := range invocations {
		// Expire idle containers whose keep-alive lapsed before this request.
		alive := pool[:0]
		for _, c := range pool {
			if c.busyUntil <= at && at-c.idleSince > timeout {
				retire(c, c.idleSince+timeout)
				continue
			}
			alive = append(alive, c)
		}
		pool = alive

		// Pick the idle container that has waited longest.
		var pick *kaContainer
		for _, c := range pool {
			if c.busyUntil <= at && (pick == nil || c.idleSince < pick.idleSince) {
				pick = c
			}
		}
		if pick != nil {
			res.WarmStarts++
			res.ReusedIntervals = append(res.ReusedIntervals, (at - pick.idleSince))
		} else {
			res.ColdStarts++
			pick = &kaContainer{launched: at}
			pool = append(pool, pick)
		}
		pick.requests++
		pick.active += execTime
		pick.busyUntil = at + execTime
		pick.idleSince = pick.busyUntil
	}

	// Drain: every surviving container idles out after its timeout.
	for _, c := range pool {
		end := c.idleSince + timeout
		retire(c, end)
	}
	return res
}

// SimulateTraceKeepAlive runs SimulateKeepAlive for every function and
// merges the results.
func SimulateTraceKeepAlive(t *Trace, execTime, timeout time.Duration) KeepAliveResult {
	return SimulateTraceKeepAliveFunc(t, func(int, *Function) time.Duration { return execTime }, timeout)
}

// SimulateTraceKeepAliveFunc is SimulateTraceKeepAlive with a per-function
// execution time, for traces whose functions have heterogeneous durations
// (the Azure trace's durations span milliseconds to minutes, which shapes
// the Fig. 1 inactive-time curve at short keep-alive timeouts).
func SimulateTraceKeepAliveFunc(t *Trace, execOf func(i int, f *Function) time.Duration, timeout time.Duration) KeepAliveResult {
	var res KeepAliveResult
	for i, f := range t.Functions {
		res.Merge(SimulateKeepAlive(f.Invocations, execOf(i, f), timeout))
	}
	return res
}

// SimulateTraceKeepAliveScalarsFunc is SimulateTraceKeepAliveFunc in
// scalars-only mode: the merged result carries counters and times but no
// per-container distributions.
func SimulateTraceKeepAliveScalarsFunc(t *Trace, execOf func(i int, f *Function) time.Duration, timeout time.Duration) KeepAliveResult {
	var res KeepAliveResult
	for i, f := range t.Functions {
		res.Merge(SimulateKeepAliveScalars(f.Invocations, execOf(i, f), timeout))
	}
	return res
}

// ReusedIntervalPercentile returns the p-th percentile of the reused
// intervals (p in [0,100]); zero if there are none. FaaSMem's semi-warm
// timing uses the 99th percentile of this distribution.
func ReusedIntervalPercentile(intervals []time.Duration, p float64) time.Duration {
	if len(intervals) == 0 {
		return 0
	}
	s := make([]time.Duration, len(intervals))
	copy(s, intervals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
