package trace_test

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/trace"
)

// Example generates an Azure-like trace and reads off the statistics the
// paper's Figures 1 and 5 are built from.
func Example() {
	tr := trace.Generate(trace.GenConfig{NumFunctions: 50, Duration: 4 * time.Hour}, 7)
	res := trace.SimulateTraceKeepAlive(tr, 500*time.Millisecond, 10*time.Minute)
	fmt.Printf("functions: %d\n", len(tr.Functions))
	fmt.Printf("inactive fraction at 10m keep-alive: %.0f%%\n", res.InactiveFraction()*100)
	fmt.Printf("cold-start ratio: %.1f%%\n", res.ColdStartRatio()*100)
	// Output:
	// functions: 50
	// inactive fraction at 10m keep-alive: 96%
	// cold-start ratio: 0.3%
}

// ExampleGenerateFunction builds one function's timeline for focused
// experiments.
func ExampleGenerateFunction() {
	f := trace.GenerateFunction("demo", time.Hour, 30*time.Second, false, 3)
	a := trace.Analyze(f, time.Hour)
	fmt.Printf("class: %v, burstiness near Poisson: %v\n",
		a.Class, a.Burstiness > -0.4 && a.Burstiness < 0.4)
	// Output:
	// class: high, burstiness near Poisson: true
}
