package trace

import (
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// FunctionAnalysis summarizes one function's arrival dynamics — the
// characteristics §8.2/§8.4/§8.6 correlate savings against: load level,
// interval dispersion, and burstiness.
type FunctionAnalysis struct {
	// Invocations over the analyzed window.
	Invocations int
	// DailyRate is the normalized invocations/day.
	DailyRate float64
	// Class is the §8.4 load class.
	Class LoadClass
	// MeanGap and GapStddev describe inter-arrival gaps.
	MeanGap, GapStddev time.Duration
	// CV is the coefficient of variation of gaps (1 ≈ Poisson, > 1 bursty).
	CV float64
	// Burstiness is Goh & Barabási's index (CV−1)/(CV+1): −1 periodic,
	// 0 Poisson, → 1 extremely bursty.
	Burstiness float64
	// PeakToMean is the max over mean of per-minute arrival counts; sudden
	// surges (Table 1's ID-5) show up here.
	PeakToMean float64
}

// Analyze computes arrival statistics for one function over window d.
func Analyze(f *Function, d time.Duration) FunctionAnalysis {
	a := FunctionAnalysis{
		Invocations: len(f.Invocations),
		DailyRate:   f.DailyRate(d),
	}
	a.Class = Classify(a.DailyRate)
	iv := f.Intervals()
	a.MeanGap, a.GapStddev = iv.Mean, iv.Stddev
	if iv.Mean > 0 {
		a.CV = float64(iv.Stddev) / float64(iv.Mean)
		a.Burstiness = (a.CV - 1) / (a.CV + 1)
	}
	a.PeakToMean = peakToMean(f.Invocations, d, time.Minute)
	return a
}

// peakToMean buckets arrivals into fixed windows and returns max/mean of the
// non-empty timeline.
func peakToMean(inv []simtime.Time, d, bucket time.Duration) float64 {
	if len(inv) == 0 || d <= 0 || bucket <= 0 {
		return 0
	}
	n := int(d/bucket) + 1
	counts := make([]int, n)
	for _, at := range inv {
		idx := int(at / bucket)
		if idx >= 0 && idx < n {
			counts[idx]++
		}
	}
	peak, sum := 0, 0
	for _, c := range counts {
		sum += c
		if c > peak {
			peak = c
		}
	}
	mean := float64(sum) / float64(n)
	if mean == 0 {
		return 0
	}
	return float64(peak) / mean
}

// AnalyzeTrace runs Analyze over every function.
func AnalyzeTrace(t *Trace) []FunctionAnalysis {
	out := make([]FunctionAnalysis, len(t.Functions))
	for i, f := range t.Functions {
		out[i] = Analyze(f, t.Duration)
	}
	return out
}
