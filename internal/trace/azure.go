package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// This file imports the real Azure Functions Invocation Trace 2021 format,
// so users holding the (non-redistributable) dataset can replay it instead
// of the synthetic generator. The published CSV has one row per invocation:
//
//	app,func,end_timestamp,duration
//
// where end_timestamp and duration are fractional seconds relative to the
// trace start. A header row is tolerated. Invocation start = end - duration.

// AzureRow is one parsed invocation record.
type AzureRow struct {
	App      string
	Func     string
	Start    simtime.Time
	Duration time.Duration
}

// ReadAzureCSV parses the Azure Functions Invocation Trace 2021 CSV format
// from r into a Trace, grouping rows by function hash. Functions keep their
// invocation start times; per-row durations are returned alongside so
// callers can build duration-faithful replays.
func ReadAzureCSV(r io.Reader) (*Trace, map[string][]time.Duration, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate per-row below; tolerate ragged header
	byFunc := make(map[string][]AzureRow)
	var maxEnd simtime.Time
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("trace: azure csv: %w", err)
		}
		line++
		if len(rec) < 4 {
			return nil, nil, fmt.Errorf("trace: azure csv line %d: %d fields, want 4", line, len(rec))
		}
		end, err1 := strconv.ParseFloat(rec[2], 64)
		dur, err2 := strconv.ParseFloat(rec[3], 64)
		if err1 != nil || err2 != nil {
			if line == 1 {
				continue // header row
			}
			return nil, nil, fmt.Errorf("trace: azure csv line %d: bad numbers %q/%q", line, rec[2], rec[3])
		}
		if dur < 0 || end < 0 {
			return nil, nil, fmt.Errorf("trace: azure csv line %d: negative time", line)
		}
		start := end - dur
		if start < 0 {
			start = 0
		}
		row := AzureRow{
			App:      rec[0],
			Func:     rec[1],
			Start:    simtime.Time(start * float64(time.Second)),
			Duration: time.Duration(dur * float64(time.Second)),
		}
		byFunc[row.Func] = append(byFunc[row.Func], row)
		if e := simtime.Time(end * float64(time.Second)); e > maxEnd {
			maxEnd = e
		}
	}
	if len(byFunc) == 0 {
		return nil, nil, fmt.Errorf("trace: azure csv: no invocations")
	}

	tr := &Trace{Duration: maxEnd + time.Second}
	durations := make(map[string][]time.Duration, len(byFunc))
	ids := make([]string, 0, len(byFunc))
	for id := range byFunc {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic function order
	for _, id := range ids {
		rows := byFunc[id]
		sort.Slice(rows, func(i, j int) bool { return rows[i].Start < rows[j].Start })
		f := &Function{ID: id}
		for _, row := range rows {
			f.Invocations = append(f.Invocations, row.Start)
			durations[id] = append(durations[id], row.Duration)
		}
		tr.Functions = append(tr.Functions, f)
	}
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	return tr, durations, nil
}

// LoadAzureCSV reads an Azure-format trace file.
func LoadAzureCSV(path string) (*Trace, map[string][]time.Duration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: azure csv: %w", err)
	}
	defer f.Close()
	return ReadAzureCSV(f)
}

// MeanDuration averages a function's recorded execution durations; zero if
// none.
func MeanDuration(durations []time.Duration) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range durations {
		sum += d
	}
	return sum / time.Duration(len(durations))
}
