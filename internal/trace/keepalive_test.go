package trace

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

func TestKeepAliveAllCold(t *testing.T) {
	// Gaps far exceed the timeout: every request cold-starts its own container.
	inv := secs(0, 1000, 2000)
	res := SimulateKeepAlive(inv, time.Second, 10*time.Second)
	if res.ColdStarts != 3 || res.WarmStarts != 0 {
		t.Fatalf("cold/warm = %d/%d, want 3/0", res.ColdStarts, res.WarmStarts)
	}
	if len(res.RequestsPerContainer) != 3 {
		t.Fatalf("containers = %d, want 3", len(res.RequestsPerContainer))
	}
	for _, n := range res.RequestsPerContainer {
		if n != 1 {
			t.Fatalf("requests per container = %d, want 1", n)
		}
	}
	if res.ColdStartRatio() != 1 {
		t.Fatalf("cold ratio = %v, want 1", res.ColdStartRatio())
	}
}

func TestKeepAliveAllWarm(t *testing.T) {
	inv := secs(0, 5, 10, 15)
	res := SimulateKeepAlive(inv, time.Second, time.Minute)
	if res.ColdStarts != 1 || res.WarmStarts != 3 {
		t.Fatalf("cold/warm = %d/%d, want 1/3", res.ColdStarts, res.WarmStarts)
	}
	if len(res.RequestsPerContainer) != 1 || res.RequestsPerContainer[0] != 4 {
		t.Fatalf("requests per container = %v, want [4]", res.RequestsPerContainer)
	}
	// Reused intervals: requests at 5,10,15 each found the container idle
	// since completion of the previous request (gap - exec = 4s).
	if len(res.ReusedIntervals) != 3 {
		t.Fatalf("reused intervals = %v", res.ReusedIntervals)
	}
	for _, ri := range res.ReusedIntervals {
		if ri != 4*time.Second {
			t.Fatalf("reused interval = %v, want 4s", ri)
		}
	}
}

func TestKeepAliveAccounting(t *testing.T) {
	// Single request: active 1s, then idles out after 10s.
	res := SimulateKeepAlive(secs(0), time.Second, 10*time.Second)
	if res.ActiveTime != time.Second {
		t.Errorf("ActiveTime = %v, want 1s", res.ActiveTime)
	}
	if res.InactiveTime != 10*time.Second {
		t.Errorf("InactiveTime = %v, want 10s", res.InactiveTime)
	}
	if res.Lifetime() != 11*time.Second {
		t.Errorf("Lifetime = %v, want 11s", res.Lifetime())
	}
	want := 10.0 / 11.0
	if math.Abs(res.InactiveFraction()-want) > 1e-9 {
		t.Errorf("InactiveFraction = %v, want %v", res.InactiveFraction(), want)
	}
	if len(res.ContainerLifetimes) != 1 || res.ContainerLifetimes[0] != 11*time.Second {
		t.Errorf("ContainerLifetimes = %v", res.ContainerLifetimes)
	}
}

func TestKeepAliveConcurrentRequestsNeedMoreContainers(t *testing.T) {
	// Two requests at the same instant with 10s exec: needs two containers.
	inv := secs(0, 0.5)
	res := SimulateKeepAlive(inv, 10*time.Second, time.Minute)
	if res.ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2 (overlapping execs)", res.ColdStarts)
	}
}

func TestKeepAliveExpiryBoundary(t *testing.T) {
	// Second request arrives exactly at timeout after idle start: still warm
	// (expiry is strict >).
	inv := secs(0, 11)
	res := SimulateKeepAlive(inv, time.Second, 10*time.Second)
	if res.WarmStarts != 1 {
		t.Fatalf("warm = %d, want 1 at exact boundary", res.WarmStarts)
	}
	// Just past the boundary: cold.
	inv2 := secs(0, 11.001)
	res2 := SimulateKeepAlive(inv2, time.Second, 10*time.Second)
	if res2.ColdStarts != 2 {
		t.Fatalf("cold = %d, want 2 past boundary", res2.ColdStarts)
	}
}

func TestKeepAliveLongerTimeoutFewerColds(t *testing.T) {
	f := GenerateFunction("f", 6*time.Hour, 2*time.Minute, false, 13)
	short := SimulateKeepAlive(f.Invocations, time.Second, 10*time.Second)
	long := SimulateKeepAlive(f.Invocations, time.Second, 10*time.Minute)
	if long.ColdStartRatio() >= short.ColdStartRatio() {
		t.Errorf("longer timeout should reduce cold ratio: %v vs %v",
			long.ColdStartRatio(), short.ColdStartRatio())
	}
	if long.InactiveFraction() <= short.InactiveFraction() {
		t.Errorf("longer timeout should increase inactive fraction: %v vs %v",
			long.InactiveFraction(), short.InactiveFraction())
	}
}

func TestKeepAliveEmpty(t *testing.T) {
	res := SimulateKeepAlive(nil, time.Second, time.Minute)
	if res.ColdStarts != 0 || res.Lifetime() != 0 || res.ColdStartRatio() != 0 || res.InactiveFraction() != 0 {
		t.Fatal("empty invocation list should produce zero result")
	}
}

func TestSimulateTraceKeepAliveMerges(t *testing.T) {
	tr := &Trace{Duration: time.Hour, Functions: []*Function{
		{ID: "a", Invocations: secs(0)},
		{ID: "b", Invocations: secs(0)},
	}}
	res := SimulateTraceKeepAlive(tr, time.Second, 10*time.Second)
	if res.ColdStarts != 2 {
		t.Fatalf("merged cold starts = %d, want 2", res.ColdStarts)
	}
	if len(res.RequestsPerContainer) != 2 {
		t.Fatalf("merged containers = %d", len(res.RequestsPerContainer))
	}
}

func TestReusedIntervalPercentile(t *testing.T) {
	var iv []time.Duration
	for i := 1; i <= 100; i++ {
		iv = append(iv, time.Duration(i)*time.Second)
	}
	if got := ReusedIntervalPercentile(iv, 99); got != 99*time.Second {
		t.Errorf("P99 = %v, want 99s", got)
	}
	if got := ReusedIntervalPercentile(iv, 0); got != time.Second {
		t.Errorf("P0 = %v, want 1s", got)
	}
	if got := ReusedIntervalPercentile(nil, 99); got != 0 {
		t.Errorf("empty P99 = %v, want 0", got)
	}
	// Input must not be mutated (sorted copy).
	shuffled := []time.Duration{3 * time.Second, 1 * time.Second, 2 * time.Second}
	ReusedIntervalPercentile(shuffled, 50)
	if shuffled[0] != 3*time.Second {
		t.Error("percentile sorted the caller's slice")
	}
}

// TestFig1Shape checks the headline trace analytic: with a 10-minute
// keep-alive the inactive fraction is very high (the paper reports 89.2%),
// and with 1 minute it is still above 50% (paper: 70.1%).
func TestFig1Shape(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 100, Duration: 12 * time.Hour}, 21)
	r10m := SimulateTraceKeepAlive(tr, 500*time.Millisecond, 10*time.Minute)
	r1m := SimulateTraceKeepAlive(tr, 500*time.Millisecond, time.Minute)
	if r10m.InactiveFraction() < 0.75 {
		t.Errorf("10m inactive fraction = %v, want > 0.75", r10m.InactiveFraction())
	}
	if r1m.InactiveFraction() < 0.5 {
		t.Errorf("1m inactive fraction = %v, want > 0.5", r1m.InactiveFraction())
	}
	if r10m.InactiveFraction() <= r1m.InactiveFraction() {
		t.Error("longer keep-alive must increase inactive fraction")
	}
}

// TestFig5Shape: a majority of containers handle only a few requests.
func TestFig5Shape(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 200, Duration: 12 * time.Hour}, 22)
	res := SimulateTraceKeepAlive(tr, 500*time.Millisecond, 10*time.Minute)
	if len(res.RequestsPerContainer) == 0 {
		t.Fatal("no containers simulated")
	}
	atMost2 := 0
	for _, n := range res.RequestsPerContainer {
		if n <= 2 {
			atMost2++
		}
	}
	frac := float64(atMost2) / float64(len(res.RequestsPerContainer))
	// The paper reports ~60%; accept a generous band for the synthetic trace.
	if frac < 0.3 {
		t.Errorf("containers with ≤2 requests = %.0f%%, want a substantial share", frac*100)
	}
}

// TestKeepAliveScalars: the scalars-only mode returns the same counters and
// times as the full simulation, with no distribution slices.
func TestKeepAliveScalars(t *testing.T) {
	tr := Generate(GenConfig{NumFunctions: 40, Duration: 2 * time.Hour}, 23)
	for _, f := range tr.Functions {
		full := SimulateKeepAlive(f.Invocations, 500*time.Millisecond, 5*time.Minute)
		sc := SimulateKeepAliveScalars(f.Invocations, 500*time.Millisecond, 5*time.Minute)
		if sc.ColdStarts != full.ColdStarts || sc.WarmStarts != full.WarmStarts ||
			sc.ActiveTime != full.ActiveTime || sc.InactiveTime != full.InactiveTime {
			t.Fatalf("%s: scalars diverge: %+v vs %+v", f.ID, sc, full)
		}
		if sc.RequestsPerContainer != nil || sc.ReusedIntervals != nil || sc.ContainerLifetimes != nil {
			t.Fatalf("%s: scalars mode filled distribution slices", f.ID)
		}
	}
}

// TestKeepAliveDifferential replays random sorted timelines (with deliberate
// duplicate timestamps, which exercise the idle-tie handling) through the
// O(n) deque implementation and the O(n·pool) reference, asserting identical
// aggregates, identical reuse intervals, and multiset-identical per-container
// distributions (the retire *order* may legitimately differ).
func TestKeepAliveDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(400)
		inv := make([]simtime.Time, n)
		var at simtime.Time
		for i := range inv {
			if rng.Intn(4) != 0 { // 1-in-4 chance of a duplicate timestamp
				at += simtime.Time(rng.Intn(180)) * simtime.Time(time.Second)
			}
			inv[i] = at
		}
		exec := time.Duration(1+rng.Intn(2000)) * time.Millisecond
		timeout := time.Duration(1+rng.Intn(600)) * time.Second

		got := SimulateKeepAlive(inv, exec, timeout)
		want := simulateKeepAliveReference(inv, exec, timeout)

		if got.ColdStarts != want.ColdStarts || got.WarmStarts != want.WarmStarts {
			t.Fatalf("seed %d: cold/warm = %d/%d, want %d/%d",
				seed, got.ColdStarts, got.WarmStarts, want.ColdStarts, want.WarmStarts)
		}
		if got.ActiveTime != want.ActiveTime || got.InactiveTime != want.InactiveTime {
			t.Fatalf("seed %d: active/inactive = %v/%v, want %v/%v",
				seed, got.ActiveTime, got.InactiveTime, want.ActiveTime, want.InactiveTime)
		}
		if !reflect.DeepEqual(got.ReusedIntervals, want.ReusedIntervals) {
			t.Fatalf("seed %d: reuse intervals diverge", seed)
		}
		sortedInts := func(s []int) []int {
			c := append([]int(nil), s...)
			sort.Ints(c)
			return c
		}
		sortedDurs := func(s []time.Duration) []time.Duration {
			c := append([]time.Duration(nil), s...)
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
			return c
		}
		if !reflect.DeepEqual(sortedInts(got.RequestsPerContainer), sortedInts(want.RequestsPerContainer)) {
			t.Fatalf("seed %d: requests-per-container multisets diverge", seed)
		}
		if !reflect.DeepEqual(sortedDurs(got.ContainerLifetimes), sortedDurs(want.ContainerLifetimes)) {
			t.Fatalf("seed %d: container-lifetime multisets diverge", seed)
		}
	}
}

// TestKeepAliveUnsortedFallback: unsorted timelines take the reference path
// and still produce its exact result.
func TestKeepAliveUnsortedFallback(t *testing.T) {
	inv := []simtime.Time{
		simtime.Time(30 * time.Second),
		simtime.Time(10 * time.Second),
		simtime.Time(20 * time.Second),
	}
	got := SimulateKeepAlive(inv, time.Second, time.Minute)
	want := simulateKeepAliveReference(inv, time.Second, time.Minute)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unsorted fallback diverges: %+v vs %+v", got, want)
	}
}
