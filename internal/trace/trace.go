// Package trace models serverless invocation traces shaped like the Azure
// Functions Invocation Trace 2021 the paper evaluates on (424 functions,
// ~1.98 M invocations). The real trace is not redistributable, so this
// package provides a calibrated synthetic generator plus the analytics the
// paper derives from the trace: cold-start ratio and memory-inactive time
// under a keep-alive policy (Fig. 1), requests handled per container
// (Fig. 5), container reused intervals (semi-warm timing, §6.1), and
// high/medium/low load classification (§8.4).
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// Function is one serverless function's invocation timeline.
type Function struct {
	// ID identifies the function (anonymized hashes in the Azure trace).
	ID string `json:"id"`
	// Invocations are firing timestamps since trace start, sorted ascending.
	Invocations []simtime.Time `json:"invocations"`
}

// Count returns the number of invocations.
func (f *Function) Count() int { return len(f.Invocations) }

// DailyRate returns the average invocations per day over the window d.
func (f *Function) DailyRate(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(len(f.Invocations)) / d.Hours() * 24
}

// LoadClass buckets functions by average daily invocations, matching the
// paper's §8.4 split: high (> 512), low (< 64), medium between.
type LoadClass int

const (
	// LowLoad functions fire fewer than 64 times per day.
	LowLoad LoadClass = iota
	// MediumLoad functions fire between 64 and 512 times per day.
	MediumLoad
	// HighLoad functions fire more than 512 times per day.
	HighLoad
)

// String implements fmt.Stringer.
func (c LoadClass) String() string {
	switch c {
	case LowLoad:
		return "low"
	case MediumLoad:
		return "medium"
	case HighLoad:
		return "high"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify returns the load class of a daily invocation rate.
func Classify(dailyRate float64) LoadClass {
	switch {
	case dailyRate > 512:
		return HighLoad
	case dailyRate < 64:
		return LowLoad
	default:
		return MediumLoad
	}
}

// Class returns the function's load class over window d.
func (f *Function) Class(d time.Duration) LoadClass { return Classify(f.DailyRate(d)) }

// IntervalStats describes the gaps between consecutive invocations.
type IntervalStats struct {
	Mean   time.Duration
	Stddev time.Duration
}

// Intervals computes inter-arrival statistics; zero for fewer than two
// invocations.
func (f *Function) Intervals() IntervalStats {
	n := len(f.Invocations) - 1
	if n < 1 {
		return IntervalStats{}
	}
	var sum float64
	gaps := make([]float64, n)
	for i := 0; i < n; i++ {
		g := (f.Invocations[i+1] - f.Invocations[i]).Seconds()
		gaps[i] = g
		sum += g
	}
	mean := sum / float64(n)
	var varsum float64
	for _, g := range gaps {
		d := g - mean
		varsum += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(varsum / float64(n))
	}
	return IntervalStats{
		Mean:   time.Duration(mean * float64(time.Second)),
		Stddev: time.Duration(std * float64(time.Second)),
	}
}

// RequestsPerMinute returns the average request rate over window d.
func (f *Function) RequestsPerMinute(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(len(f.Invocations)) / d.Minutes()
}

// Trace is a set of function timelines over a common window.
type Trace struct {
	// Duration is the trace window; invocations fall in [0, Duration).
	Duration time.Duration `json:"duration"`
	// Functions holds each function's timeline.
	Functions []*Function `json:"functions"`
}

// TotalInvocations sums invocations across all functions.
func (t *Trace) TotalInvocations() int {
	n := 0
	for _, f := range t.Functions {
		n += len(f.Invocations)
	}
	return n
}

// Find returns the function with the given ID, or nil.
func (t *Trace) Find(id string) *Function {
	for _, f := range t.Functions {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// ByClass partitions function indices by load class.
func (t *Trace) ByClass() map[LoadClass][]*Function {
	m := make(map[LoadClass][]*Function)
	for _, f := range t.Functions {
		c := f.Class(t.Duration)
		m[c] = append(m[c], f)
	}
	return m
}

// Validate checks structural invariants: sorted, in-window timestamps and
// unique IDs. It returns the first problem found.
func (t *Trace) Validate() error {
	if t.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", t.Duration)
	}
	seen := make(map[string]bool, len(t.Functions))
	for _, f := range t.Functions {
		if f.ID == "" {
			return fmt.Errorf("trace: function with empty ID")
		}
		if seen[f.ID] {
			return fmt.Errorf("trace: duplicate function ID %q", f.ID)
		}
		seen[f.ID] = true
		if !sort.SliceIsSorted(f.Invocations, func(i, j int) bool {
			return f.Invocations[i] < f.Invocations[j]
		}) {
			return fmt.Errorf("trace: function %q invocations not sorted", f.ID)
		}
		for _, at := range f.Invocations {
			if at < 0 || at >= t.Duration {
				return fmt.Errorf("trace: function %q invocation %v outside [0, %v)", f.ID, at, t.Duration)
			}
		}
	}
	return nil
}

// Slice returns a copy of the trace restricted to [from, to), with
// timestamps re-based to 0. Functions left with no invocations are dropped.
func (t *Trace) Slice(from, to simtime.Time) *Trace {
	if to > t.Duration {
		to = t.Duration
	}
	out := &Trace{Duration: to - from}
	for _, f := range t.Functions {
		var inv []simtime.Time
		for _, at := range f.Invocations {
			if at >= from && at < to {
				inv = append(inv, at-from)
			}
		}
		if len(inv) > 0 {
			out.Functions = append(out.Functions, &Function{ID: f.ID, Invocations: inv})
		}
	}
	return out
}

// Concat appends the functions of others into a copy of t, prefixing IDs on
// collision. The window becomes the maximum of all durations.
func Concat(traces ...*Trace) *Trace {
	out := &Trace{}
	seen := map[string]int{}
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		if tr.Duration > out.Duration {
			out.Duration = tr.Duration
		}
		for _, f := range tr.Functions {
			id := f.ID
			if n := seen[id]; n > 0 {
				id = fmt.Sprintf("%s~%d", f.ID, n)
			}
			seen[f.ID]++
			out.Functions = append(out.Functions, &Function{
				ID:          id,
				Invocations: append([]simtime.Time(nil), f.Invocations...),
			})
		}
	}
	return out
}

// TimeScale returns a copy of t with every timestamp (and the window)
// multiplied by factor — compressing a day-long trace into an hour for quick
// runs, or stretching a dense one. factor must be positive.
func (t *Trace) TimeScale(factor float64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("trace: non-positive time scale %v", factor))
	}
	out := &Trace{Duration: time.Duration(float64(t.Duration) * factor)}
	for _, f := range t.Functions {
		nf := &Function{ID: f.ID, Invocations: make([]simtime.Time, len(f.Invocations))}
		for i, at := range f.Invocations {
			nf.Invocations[i] = simtime.Time(float64(at) * factor)
		}
		out.Functions = append(out.Functions, nf)
	}
	return out
}
