package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write encodes the trace as JSON to w.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Read decodes a JSON trace from r and validates it.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads and validates a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}
