package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/faasmem/faasmem/internal/simtime"
)

// GenConfig parameterizes the synthetic Azure-like trace generator.
//
// The defaults are calibrated against the statistics the paper publishes
// about the Azure Functions Invocation Trace 2021: 424 functions, a
// heavy-tailed per-function rate distribution (so that high/medium/low
// classes per §8.4 are all populated), bursty arrivals for part of the
// population (the paper's high-load traces "exhibit a sudden increase and
// decrease"), and a diurnal load swing.
type GenConfig struct {
	// NumFunctions is the number of function timelines. Default 424.
	NumFunctions int
	// Duration is the trace window. Default 24h.
	Duration time.Duration
	// MedianDailyRate is the median invocations/day. The rates follow a
	// log-normal distribution around it. Default 300, which with the default
	// SigmaLog puts the mean near the Azure trace's ~4,670 invocations/day
	// per function (1,980,951 invocations / 424 functions / day) while
	// populating all three §8.4 load classes.
	MedianDailyRate float64
	// SigmaLog is the log-normal sigma of per-function rates. Default 2.2.
	SigmaLog float64
	// BurstyFraction is the share of functions with Markov-modulated bursty
	// arrivals rather than plain Poisson. Default 0.35.
	BurstyFraction float64
	// BurstMultiplier is the rate multiplier inside a burst episode.
	// Default 5. With the default duty cycle the quiet-state rate is scaled
	// so the long-run average stays at the function's base rate.
	BurstMultiplier float64
	// BurstDutyCycle is the fraction of time a bursty function spends in
	// burst state. Default 0.1 (mean burst 60 s, mean quiet ~9 min).
	BurstDutyCycle float64
	// DiurnalAmplitude in [0, 1) scales the day/night rate swing. Default
	// 0.4 (rate varies ±40% over the day).
	DiurnalAmplitude float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NumFunctions <= 0 {
		c.NumFunctions = 424
	}
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.MedianDailyRate <= 0 {
		c.MedianDailyRate = 300
	}
	if c.SigmaLog <= 0 {
		c.SigmaLog = 2.2
	}
	if c.BurstyFraction < 0 || c.BurstyFraction > 1 {
		c.BurstyFraction = 0.35
	}
	if c.BurstMultiplier <= 1 {
		c.BurstMultiplier = 5
	}
	if c.BurstDutyCycle <= 0 || c.BurstDutyCycle >= 1 {
		c.BurstDutyCycle = 0.1
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		c.DiurnalAmplitude = 0.4
	}
	return c
}

// Generate produces a synthetic trace from cfg using the given seed. Equal
// seeds yield identical traces.
func Generate(cfg GenConfig, seed int64) *Trace {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Duration: c.Duration}
	for i := 0; i < c.NumFunctions; i++ {
		// Log-normal daily rate, clamped to at least one invocation/day
		// equivalent over the window.
		daily := c.MedianDailyRate * math.Exp(rng.NormFloat64()*c.SigmaLog)
		if daily > 4e5 {
			daily = 4e5 // cap ultra-hot tails to keep traces tractable
		}
		bursty := rng.Float64() < c.BurstyFraction
		f := &Function{ID: fmt.Sprintf("func-%03d", i)}
		f.Invocations = genArrivals(rng, c, daily, bursty)
		t.Functions = append(t.Functions, f)
	}
	return t
}

// genArrivals simulates one function's arrival process by thinning a
// time-varying Poisson process. The instantaneous rate combines the base
// rate, a diurnal sinusoid, and (for bursty functions) a two-state
// Markov-modulated multiplier.
func genArrivals(rng *rand.Rand, c GenConfig, dailyRate float64, bursty bool) []simtime.Time {
	baseRate := dailyRate / (24 * 3600) // per second
	if baseRate <= 0 {
		return nil
	}
	// Peak rate for thinning must bound the instantaneous rate.
	peak := baseRate * (1 + c.DiurnalAmplitude)
	if bursty {
		peak *= c.BurstMultiplier
	}

	// Burst-state machine: exponential dwell times chosen so the duty cycle
	// matches BurstDutyCycle with a mean burst of 60 s.
	const meanBurst = 60.0 // seconds
	meanQuiet := meanBurst * (1 - c.BurstDutyCycle) / c.BurstDutyCycle
	inBurst := false
	stateUntil := 0.0
	nextState := func(now float64) {
		for stateUntil <= now {
			if inBurst {
				inBurst = false
				stateUntil += rng.ExpFloat64() * meanQuiet
			} else {
				inBurst = true
				stateUntil += rng.ExpFloat64() * meanBurst
			}
		}
	}
	// Randomize initial state/phase.
	if bursty && rng.Float64() < c.BurstDutyCycle {
		inBurst = true
	}
	stateUntil = rng.ExpFloat64() * meanQuiet

	horizon := c.Duration.Seconds()
	var out []simtime.Time
	now := 0.0
	for {
		now += rng.ExpFloat64() / peak
		if now >= horizon {
			break
		}
		rate := baseRate * (1 + c.DiurnalAmplitude*math.Sin(2*math.Pi*now/86400))
		if bursty {
			nextState(now)
			if inBurst {
				rate *= c.BurstMultiplier
			} else {
				// Compensate so the average stays near dailyRate.
				rate *= (1 - c.BurstDutyCycle*c.BurstMultiplier) / (1 - c.BurstDutyCycle)
				if rate < 0 {
					rate = baseRate * 0.05
				}
			}
		}
		if rng.Float64() < rate/peak {
			out = append(out, simtime.Time(now*float64(time.Second)))
		}
	}
	return out
}

// GenerateFunction builds a single-function trace with the given mean
// inter-arrival gap and burstiness over the window — convenient for focused
// experiments (Fig. 13's common vs bursty cases) without a full 424-function
// trace.
func GenerateFunction(id string, duration time.Duration, meanGap time.Duration, bursty bool, seed int64) *Function {
	rng := rand.New(rand.NewSource(seed))
	c := GenConfig{Duration: duration}.withDefaults()
	daily := 86400 / meanGap.Seconds()
	return &Function{ID: id, Invocations: genArrivals(rng, c, daily, bursty)}
}
