package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAzureCSV ensures arbitrary CSV input never panics the importer and
// that accepted traces always validate.
func FuzzReadAzureCSV(f *testing.F) {
	f.Add(sampleAzureCSV)
	f.Add("a,f,1.0,0.5\n")
	f.Add("")
	f.Add("a,f\n")
	f.Add("a,f,nan,inf\n")
	f.Add("a,f,-1,0\n")
	f.Add(strings.Repeat("x,y,1,1\n", 100))
	f.Fuzz(func(t *testing.T, data string) {
		tr, _, err := ReadAzureCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
	})
}

// FuzzReadTraceJSON ensures the JSON loader never panics and only returns
// valid traces.
func FuzzReadTraceJSON(f *testing.F) {
	var buf bytes.Buffer
	_ = Generate(GenConfig{NumFunctions: 2, Duration: 1e9}, 1).Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(`{"duration": -1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"duration": 100, "functions": [{"id":"a","invocations":[5,3]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
	})
}
