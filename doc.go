// Package faasmem is a from-scratch Go reproduction of "FaaSMem: Improving
// Memory Efficiency of Serverless Computing with Memory Pool Architecture"
// (Xu et al., ASPLOS 2024).
//
// The repository contains a discrete-event serverless-platform simulator
// with a page-granularity memory model (internal/faas, internal/pagemem,
// internal/mglru, internal/rmem, internal/fastswap, internal/cgroup), the
// paper's FaaSMem policy (internal/core), the TMO and region-based DAMON
// baselines (internal/policy), an Azure-like trace generator with real-CSV
// import (internal/trace), the 11 benchmark workload profiles
// (internal/workload), a multi-node rack composition (internal/cluster), an
// HTTP control plane (internal/gateway, cmd/faasmem-gateway), reporting
// primitives (internal/report, internal/metrics), and a harness reproducing
// every table and figure of the paper's evaluation plus six extension
// studies (internal/experiments, cmd/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root package itself holds only documentation and the benchmark
// harness (bench_test.go).
package faasmem
