# FaaSMem reproduction — common targets.

GO ?= go

.PHONY: all build test vet bench bench-json experiments experiments-quick examples trace-demo attrib-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Tier-1 figure/table benchmarks plus the page-engine micro-benches, snapshotted
# as machine-readable JSON (the CI perf artifact; see cmd/benchjson).
BENCH_GATE = Fig|Table|BarrierInsert|PucketOffloadScan|HarnessParallelFanout|DisabledSpans|PoolDensity|MemnodeOffload
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchmem . 2>&1 | tee bench_gate.txt | $(GO) run ./cmd/benchjson -baseline BENCH_BASELINE.json -o BENCH_2.json
	@echo "wrote BENCH_2.json"

# Regenerate every figure/table at paper scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -seed 42 | tee experiments_full.txt

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Figures + machine-readable rows.
results:
	$(GO) run ./cmd/experiments -seed 42 -json results -svg results

# Record a 3-function run and export a Perfetto-loadable trace.
trace-demo:
	$(GO) run ./examples/tracing faasmem-trace.json

# Side-by-side latency attribution under relaxed vs. pressured memory, plus
# an exported span file for cmd/faasmem-stat.
attrib-demo:
	$(GO) run ./examples/attribution faasmem-spans.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mlinference
	$(GO) run ./examples/webservice
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/rack
	$(GO) run ./examples/sweep > /dev/null
	$(GO) run ./examples/attribution

clean:
	rm -rf results test_output.txt bench_output.txt bench_gate.txt faasmem-trace.json faasmem-spans.json attrib_quick.txt
