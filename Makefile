# FaaSMem reproduction — common targets.

GO ?= go

.PHONY: all build test vet bench bench-json cover fuzz-smoke experiments experiments-quick examples trace-demo attrib-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Tier-1 figure/table benchmarks plus the page-engine and event-engine
# micro-benches, snapshotted as machine-readable JSON (the CI perf artifact;
# see cmd/benchjson). One run feeds three artifacts: the raw log
# (bench_gate.txt, which records allocs/op for the regression gate), the JSON
# snapshot, and a per-bench speedup table against the latest committed
# BENCH_*.json printed to stderr.
BENCH_GATE = Fig|Table|BarrierInsert|PucketOffloadScan|HarnessParallelFanout|DisabledSpans|DisabledTimeline|DisabledExemplars|PoolDensity|MemnodeOffload|MergeLookup|EngineSchedule|EngineTimerWheel|SharedRegionMap|DAGPipeline
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchmem . 2>&1 | tee bench_gate.txt | $(GO) run ./cmd/benchjson -baseline BENCH_BASELINE.json -latest 'BENCH_*.json' -allocs-gate 10 -o BENCH_3.json
	@echo "wrote BENCH_3.json (raw log with allocs/op: bench_gate.txt)"

# Total statement coverage, gated against the committed baseline floor
# (COVERAGE_BASELINE.txt, the seed repo's coverage; CI enforces the same).
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | grep -o '[0-9.]*%' | tr -d '%'); \
	floor=$$(cat COVERAGE_BASELINE.txt); \
	echo "total statement coverage: $$total% (baseline floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t >= f) }' || { echo "below baseline"; exit 1; }

# 30s of native fuzzing per target — the same smoke CI runs. Corpus seeds
# live under each package's testdata/fuzz/ and replay in plain `go test`.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzEngineVsReference$$' -fuzztime=$(FUZZTIME) ./internal/simtime
	$(GO) test -run='^$$' -fuzz='^FuzzDifferentialOps$$'  -fuzztime=$(FUZZTIME) ./internal/mglru
	$(GO) test -run='^$$' -fuzz='^FuzzSpaceDifferential$$' -fuzztime=$(FUZZTIME) ./internal/pagemem
	$(GO) test -run='^$$' -fuzz='^FuzzPlan$$'              -fuzztime=$(FUZZTIME) ./internal/faultinject
	$(GO) test -run='^$$' -fuzz='^FuzzReadAzureCSV$$'      -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzReadTraceJSON$$'     -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzReadProfiles$$'      -fuzztime=$(FUZZTIME) ./internal/workload
	$(GO) test -run='^$$' -fuzz='^FuzzWorkflowDAG$$'       -fuzztime=$(FUZZTIME) ./internal/faas
	$(GO) test -run='^$$' -fuzz='^FuzzMergeDomains$$'      -fuzztime=$(FUZZTIME) ./internal/memnode

# Regenerate every figure/table at paper scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -seed 42 | tee experiments_full.txt

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Figures + machine-readable rows.
results:
	$(GO) run ./cmd/experiments -seed 42 -json results -svg results

# Record a 3-function run and export a Perfetto-loadable trace.
trace-demo:
	$(GO) run ./examples/tracing faasmem-trace.json

# Side-by-side latency attribution under relaxed vs. pressured memory, plus
# an exported span file for cmd/faasmem-stat.
attrib-demo:
	$(GO) run ./examples/attribution faasmem-spans.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mlinference
	$(GO) run ./examples/webservice
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/rack
	$(GO) run ./examples/sweep > /dev/null
	$(GO) run ./examples/attribution

clean:
	rm -rf results test_output.txt bench_output.txt coverage.out faasmem-trace.json faasmem-spans.json attrib_quick.txt timeline_quick.txt
