// Rack example: four compute nodes with tight DRAM limits sharing one
// memory-pool node. With the baseline, keep-alive containers overflow the
// nodes' DRAM and get evicted — manufacturing cold starts. With FaaSMem, the
// same DRAM holds more (mostly offloaded) containers, so fewer requests
// cold-start: deployment density, measured rather than estimated.
//
//	go run ./examples/rack
package main

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/cluster"
	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	const (
		nodes    = 4
		limitMB  = 1800
		duration = 20 * time.Minute
	)
	apps := []*workload.Profile{workload.Bert(), workload.Graph(), workload.Web()}

	run := func(name string, newPolicy func() policy.Policy) cluster.Stats {
		engine := simtime.NewEngine()
		rack := cluster.New(engine, cluster.Config{
			Nodes: nodes,
			Node: faas.Config{
				KeepAliveTimeout: 10 * time.Minute,
				NodeMemoryLimit:  limitMB * 1_000_000,
				Seed:             7,
			},
			Pool:      rmem.Config{}, // the paper's 56 Gbps rack pool
			Scheduler: cluster.WarmFirst,
		}, newPolicy)
		for i := 0; i < 12; i++ {
			prof := *apps[i%len(apps)]
			prof.Name = fmt.Sprintf("%s-%d", prof.Name, i)
			fn := trace.GenerateFunction(prof.Name, duration,
				time.Duration(15+5*i)*time.Second, i%2 == 0, int64(100+i))
			rack.Register(prof.Name, &prof)
			rack.ScheduleInvocations(prof.Name, fn.Invocations)
		}
		engine.RunUntil(duration + 10*time.Minute)
		return rack.Stats()
	}

	base := run("baseline", func() policy.Policy { return policy.NoOffload{} })
	fm := run("faasmem", func() policy.Policy { return core.New(core.Config{}) })

	fmt.Printf("Rack: %d nodes x %d MB DRAM, shared memory pool, 12 functions, %v\n\n",
		nodes, limitMB, duration)
	fmt.Printf("  %-26s %12s %12s\n", "", "baseline", "faasmem")
	fmt.Printf("  %-26s %12d %12d\n", "requests served", base.Requests, fm.Requests)
	fmt.Printf("  %-26s %11.2f%% %11.2f%%\n", "cold-start ratio",
		pct(base.ColdStarts, base.Requests), pct(fm.ColdStarts, fm.Requests))
	fmt.Printf("  %-26s %12d %12d\n", "containers evicted", base.Evicted, fm.Evicted)
	fmt.Printf("  %-26s %9.0f MB %9.0f MB\n", "avg rack-local memory", base.TotalLocalAvgMB, fm.TotalLocalAvgMB)
	fmt.Printf("  %-26s %12s %9.2f MB/s\n", "pool offload bandwidth", "-", fm.OffloadBWMBps)
}

func pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
