// Quickstart: run one serverless function under FaaSMem and see how much
// local memory the memory-pool architecture saves versus keeping everything
// resident.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	// A request every 20 s for 10 minutes, then a long keep-alive tail.
	var invocations []simtime.Time
	for i := 0; i < 30; i++ {
		invocations = append(invocations, simtime.Time(i*20)*simtime.Time(time.Second))
	}

	run := func(pol policy.Policy) (avgMB float64, p95 time.Duration) {
		engine := simtime.NewEngine()
		platform := faas.New(engine, faas.Config{
			KeepAliveTimeout: 10 * time.Minute, // the paper's setting
			Seed:             1,
		}, pol)
		fn := platform.Register("my-function", workload.Web())
		platform.ScheduleInvocations("my-function", invocations)
		engine.Run() // drain: requests, keep-alive, recycle

		return platform.NodeLocalAvg() / 1e6,
			time.Duration(fn.Stats().Latency.P95() * float64(time.Second))
	}

	baseMB, baseP95 := run(policy.NoOffload{})
	fmMB, fmP95 := run(core.New(core.Config{}))

	fmt.Println("FaaSMem quickstart — HTML web service, 30 requests, 10-minute keep-alive")
	fmt.Printf("  baseline (no offloading): avg local memory %7.1f MB, P95 latency %v\n", baseMB, baseP95.Round(time.Millisecond))
	fmt.Printf("  FaaSMem:                  avg local memory %7.1f MB, P95 latency %v\n", fmMB, fmP95.Round(time.Millisecond))
	fmt.Printf("  local memory saved:       %.1f%%\n", (1-fmMB/baseMB)*100)
}
