// Attribution: answer "where does the tail latency come from" for one
// workload. The example runs a web service twice — generous memory vs. an
// aggressive semi-warm drain — records a causal span tree for every request,
// and prints the per-phase P50/P95/P99 attribution tables side by side. The
// phase columns of every row sum exactly to that row's end-to-end latency.
//
//	go run ./examples/attribution [spans.json]
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	duration := 20 * time.Minute
	fn := trace.GenerateFunction("web", duration, 15*time.Second, false, 7)

	run := func(label string, cfg core.Config) *span.Recorder {
		rec := span.NewRecorder(0) // 0 = default 32 Ki invocation ring
		experiments.RunScenario(experiments.Scenario{
			Profile:     workload.Web(),
			Invocations: fn.Invocations,
			Duration:    duration,
			KeepAlive:   10 * time.Minute,
			Policy:      experiments.FaaSMem,
			CoreConfig:  cfg,
			SeedHistory: true,
			Seed:        7,
			Spans:       rec,
		})
		fmt.Printf("--- %s ---\n", label)
		if err := span.WriteText(os.Stdout, span.Analyze(rec.Invocations())); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		return rec
	}

	run("relaxed: default semi-warm timing", core.Config{})
	// Force the fallback drain timing and make it aggressive: local pages
	// leave early, so requests pay remote-fault stalls and semi-warm
	// restores — watch the fault-stall and restore columns grow.
	pressured := run("pressured: 5s semi-warm drain", core.Config{
		MinIntervalSamples:    1 << 30,
		FallbackSemiWarmDelay: 5 * time.Second,
	})

	if len(os.Args) > 1 {
		out := os.Args[1]
		if err := span.WriteChromeTraceFile(out, pressured); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pressured run's spans written to %s — inspect with\n", out)
		fmt.Printf("  go run ./cmd/faasmem-stat -trace %s\n", out)
	}
}
