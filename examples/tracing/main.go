// Tracing: run three functions under FaaSMem with full telemetry and export
// a Chrome trace-event JSON file. Open the output in https://ui.perfetto.dev
// (or chrome://tracing) to see container lifecycles, Pucket offloads, page
// faults and link transfers on the simulated timeline.
//
//	go run ./examples/tracing [out.json]
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	out := "faasmem-trace.json"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	// Attach a tracer and a metric registry to the platform; every subsystem
	// (containers, policy, pool link, swap device) reports into them.
	hub := telemetry.Hub{
		Tracer: telemetry.NewTracer(0), // 0 = default 64 Ki event ring
		Reg:    telemetry.NewRegistry(),
	}

	engine := simtime.NewEngine()
	platform := faas.New(engine, faas.Config{
		KeepAliveTimeout: 5 * time.Minute,
		Telemetry:        hub,
		Seed:             1,
	}, core.New(core.Config{}))

	// Three functions with different memory personalities: a large ML model,
	// a lean web service, and a JSON transcoder.
	duration := 10 * time.Minute
	for _, b := range []struct {
		profile *workload.Profile
		gap     time.Duration
	}{
		{workload.Bert(), 40 * time.Second},
		{workload.Web(), 10 * time.Second},
		{workload.ByName("json"), 15 * time.Second},
	} {
		fn := trace.GenerateFunction(b.profile.Name, duration, b.gap, false, 1)
		platform.Register(b.profile.Name, b.profile)
		platform.ScheduleInvocations(b.profile.Name, fn.Invocations)
	}
	engine.RunUntil(duration + 5*time.Minute) // trace window + keep-alive tail

	if err := telemetry.WriteChromeTraceFile(out, hub.Tracer); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("FaaSMem tracing example — 3 functions over %v\n\n", duration)
	fmt.Printf("  events recorded: %d (%d dropped)\n", hub.Tracer.Total(), hub.Tracer.Dropped())
	fmt.Println("  counters:")
	for _, s := range hub.Reg.Snapshot() {
		fmt.Printf("    %-42s %d\n", s.Name, s.Value)
	}
	fmt.Printf("\n  trace written to %s — open it in https://ui.perfetto.dev\n", out)
}
