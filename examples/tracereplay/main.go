// Trace replay example: generate an Azure-like multi-function trace, map its
// functions onto the paper's 11 benchmarks round-robin, and replay the whole
// node under FaaSMem — the closest analogue of the paper's end-to-end
// evaluation in one program.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/faas"
	"github.com/faasmem/faasmem/internal/policy"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	// A modest slice of an Azure-like day: 40 functions, 30 minutes. The
	// micro-benchmarks keep the multi-function replay fast; swap in the
	// full profile list for a heavier run.
	tr := trace.Generate(trace.GenConfig{
		NumFunctions: 40,
		Duration:     30 * time.Minute,
	}, 99)
	profiles := workload.Profiles()[3:] // the eight micro-benchmarks

	type result struct {
		name    string
		avgMB   float64
		poolMB  float64
		faults  int64
		reqs    int
		p95Max  float64
		bwMBps  float64
		created int
	}

	run := func(pol policy.Policy) result {
		engine := simtime.NewEngine()
		platform := faas.New(engine, faas.Config{
			KeepAliveTimeout: 10 * time.Minute,
			Pool:             rmem.Config{Capacity: 64 << 30},
			Seed:             99,
		}, pol)
		platform.ReplayTrace(tr, func(i int, f *trace.Function) *workload.Profile {
			p := *profiles[i%len(profiles)]
			p.Name = f.ID // one registered function per trace function
			return &p
		})
		engine.RunUntil(tr.Duration + 10*time.Minute)

		r := result{name: "?", created: platform.ContainersCreated()}
		r.avgMB = platform.NodeLocalAvg() / 1e6
		r.poolMB = float64(platform.Pool().Used()) / 1e6
		r.bwMBps = platform.Pool().Meter(rmem.Offload).Average(engine.Now()) / 1e6
		for _, fn := range platform.Functions() {
			st := fn.Stats()
			r.faults += st.FaultPages
			r.reqs += st.Requests
			if p95 := st.Latency.P95(); p95 > r.p95Max {
				r.p95Max = p95
			}
		}
		return r
	}

	fmt.Printf("Replaying %d functions / %d invocations over %v\n\n",
		len(tr.Functions), tr.TotalInvocations(), tr.Duration)

	base := run(policy.NoOffload{})
	fm := run(core.New(core.Config{}))

	fmt.Printf("  %-28s %12s %12s\n", "", "baseline", "faasmem")
	fmt.Printf("  %-28s %9.1f MB %9.1f MB\n", "avg node-local memory", base.avgMB, fm.avgMB)
	fmt.Printf("  %-28s %12d %12d\n", "requests served", base.reqs, fm.reqs)
	fmt.Printf("  %-28s %12d %12d\n", "containers created", base.created, fm.created)
	fmt.Printf("  %-28s %11.3fs %11.3fs\n", "worst per-function P95", base.p95Max, fm.p95Max)
	fmt.Printf("  %-28s %12d %12d\n", "remote page faults", base.faults, fm.faults)
	fmt.Printf("  %-28s %9.1f MB %9.1f MB\n", "pool residency at end", base.poolMB, fm.poolMB)
	fmt.Printf("  %-28s %12s %9.3f MB/s\n", "avg offload bandwidth", "-", fm.bwMBps)
	fmt.Printf("\n  node-local memory saved: %.1f%%\n", (1-fm.avgMB/base.avgMB)*100)
}
