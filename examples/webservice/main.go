// Web-service example: an HTML cache whose pages are hit with Pareto
// popularity. FaaSMem's window-based Init-Pucket offload waits until the
// descent gradient of untouched cached pages flattens, then offloads the
// cold tail — giving the Web benchmark the paper's highest offload ratio.
//
//	go run ./examples/webservice
package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	prof := workload.Web()

	// Show the access skew first: which cached objects do 40 requests touch?
	rng := rand.New(rand.NewSource(3))
	hits := map[int64]int{}
	for i := 0; i < 40; i++ {
		t := prof.RequestTouches(rng)
		if len(t.Init) > 1 {
			hits[t.Init[1].Start/1e6]++
		}
	}
	fmt.Printf("Pareto access skew over 40 requests (%d cached objects):\n", prof.Objects)
	fmt.Printf("  distinct objects touched: %d — the rest of the %d MB cache is cold\n\n",
		len(hits), prof.InitBytes/1e6)

	// Run the full pipeline and report what the Init-Pucket window chose.
	const duration = 20 * time.Minute
	fn := trace.GenerateFunction("web", duration, 8*time.Second, false, 3)
	out := experiments.RunScenario(experiments.Scenario{
		Profile:     prof,
		Invocations: fn.Invocations,
		Duration:    duration,
		Policy:      experiments.FaaSMem,
		SeedHistory: true,
		Seed:        3,
	})
	base := experiments.RunScenario(experiments.Scenario{
		Profile:     prof,
		Invocations: fn.Invocations,
		Duration:    duration,
		Policy:      experiments.Baseline,
		Seed:        3,
	})

	fmt.Printf("Web service under FaaSMem (%d requests over %v):\n", out.Requests, duration)
	if cs := out.CoreStats; cs != nil && len(cs.WindowSizes) > 0 {
		fmt.Printf("  request-window chosen per container: %v\n", cs.WindowSizes)
	}
	fmt.Printf("  avg local memory: %.0f MB (baseline %.0f MB) → %.1f%% saved\n",
		out.AvgLocalMB, base.AvgLocalMB, (1-out.AvgLocalMB/base.AvgLocalMB)*100)
	fmt.Printf("  P95 latency:      %.3fs (baseline %.3fs)\n", out.P95, base.P95)
	fmt.Printf("  faults recalled:  %d pages across %d requests\n", out.FaultPages, out.Requests)
}
