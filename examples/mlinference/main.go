// ML inference example: the paper's BERT workload under a bursty trace,
// comparing no offloading, TMO, and FaaSMem — and showing what each FaaSMem
// mechanism (Pucket, semi-warm) contributes.
//
//	go run ./examples/mlinference
package main

import (
	"fmt"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	const duration = 20 * time.Minute
	prof := workload.Bert()
	// Bursty arrivals: sudden request surges create stranded keep-alive
	// containers — exactly what semi-warm is designed for.
	fn := trace.GenerateFunction("bert", duration, 12*time.Second, true, 21)
	fmt.Printf("BERT inference: %d requests over %v (bursty)\n\n", len(fn.Invocations), duration)

	fmt.Printf("  %-22s %10s %10s %12s %14s\n", "policy", "P95", "P99", "avg mem", "offloaded")
	for _, pk := range []experiments.PolicyKind{
		experiments.Baseline,
		experiments.TMO,
		experiments.FaaSMem,
		experiments.FaaSMemNoPucket,
		experiments.FaaSMemNoSemi,
	} {
		out := experiments.RunScenario(experiments.Scenario{
			Profile:     prof,
			Invocations: fn.Invocations,
			Duration:    duration,
			Policy:      pk,
			SeedHistory: true, // provider-side trace profiling for semi-warm
			Seed:        21,
		})
		fmt.Printf("  %-22s %9.3fs %9.3fs %9.0f MB %11.0f MB\n",
			pk, out.P95, out.P99, out.AvgLocalMB, out.OffloadedMB)
	}
	fmt.Println("\nPucket offloads cold runtime/init pages early; semi-warm drains idle")
	fmt.Println("containers' hot pages after the 99th-percentile reuse interval.")
}
