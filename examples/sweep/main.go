// Sweep example: a sensitivity study the paper's fixed setup can't show —
// how FaaSMem's memory savings and the baseline's footprint respond to the
// keep-alive timeout, printed as a table and written as CSV.
//
//	go run ./examples/sweep > sweep.csv
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	const duration = 20 * time.Minute
	prof := workload.Web()
	fn := trace.GenerateFunction("web", duration, 20*time.Second, false, 17)

	var points []experiments.SweepPoint
	for _, ka := range []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 20 * time.Minute} {
		for _, pk := range []experiments.PolicyKind{experiments.Baseline, experiments.FaaSMem} {
			points = append(points, experiments.SweepPoint{
				Label: fmt.Sprintf("keepalive=%v/%s", ka, pk),
				Scenario: experiments.Scenario{
					Profile:     prof,
					Invocations: fn.Invocations,
					Duration:    duration,
					KeepAlive:   ka,
					Policy:      pk,
					SeedHistory: true,
					Seed:        17,
				},
			})
		}
	}

	results := experiments.Sweep(points)

	fmt.Fprintf(os.Stderr, "keep-alive sweep, web benchmark, %d requests:\n\n", len(fn.Invocations))
	fmt.Fprintf(os.Stderr, "  %-28s %10s %10s %8s\n", "point", "avg mem", "cold", "P95")
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "  %-28s %7.1f MB %10d %7.3fs\n",
			r.Label, r.Outcome.AvgLocalMB, r.Outcome.ColdStarts, r.Outcome.P95)
	}
	fmt.Fprintln(os.Stderr, "\nCSV on stdout — pipe to a file for plotting.")

	if err := experiments.WriteSweepCSV(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
