// Command tracegen generates a synthetic Azure-like invocation trace and
// writes it as JSON, or prints statistics of an existing trace file.
//
// Usage:
//
//	tracegen -out trace.json -functions 424 -duration 24h -seed 7
//	tracegen -stats trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/faasmem/faasmem/internal/trace"
)

func main() {
	out := flag.String("out", "", "output JSON path (generation mode)")
	stats := flag.String("stats", "", "print statistics of an existing trace file")
	azure := flag.String("azure", "", "convert a real Azure Functions Invocation Trace 2021 CSV to the JSON format (use with -out) or print its stats")
	functions := flag.Int("functions", 424, "number of functions")
	duration := flag.Duration("duration", 24*time.Hour, "trace window")
	median := flag.Float64("median", 300, "median daily invocation rate")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	switch {
	case *azure != "":
		tr, _, err := trace.LoadAzureCSV(*azure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *out != "" {
			if err := tr.Save(*out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("converted %s -> %s\n", *azure, *out)
		}
		printStats(tr)
	case *stats != "":
		tr, err := trace.Load(*stats)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printStats(tr)
	case *out != "":
		tr := trace.Generate(trace.GenConfig{
			NumFunctions:    *functions,
			Duration:        *duration,
			MedianDailyRate: *median,
		}, *seed)
		if err := tr.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d functions, %d invocations over %v\n",
			*out, len(tr.Functions), tr.TotalInvocations(), tr.Duration)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(tr *trace.Trace) {
	fmt.Printf("functions      %d\n", len(tr.Functions))
	fmt.Printf("invocations    %d\n", tr.TotalInvocations())
	fmt.Printf("duration       %v\n", tr.Duration)
	byClass := tr.ByClass()
	for _, cl := range []trace.LoadClass{trace.HighLoad, trace.MediumLoad, trace.LowLoad} {
		fmt.Printf("%-8v load   %d functions\n", cl, len(byClass[cl]))
	}
	ka := trace.SimulateTraceKeepAlive(tr, 500*time.Millisecond, 10*time.Minute)
	fmt.Printf("10m keep-alive inactive time %.1f%%, cold-start ratio %.2f%%\n",
		ka.InactiveFraction()*100, ka.ColdStartRatio()*100)
}
