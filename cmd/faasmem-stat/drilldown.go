package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/faasmem/faasmem/internal/drilldown"
)

// explainMain is `faasmem-stat explain <run.json>`: drill one window of a
// captured run down to its flow-ledger slice and tail-exemplar critical
// paths. Run files come from `faasmem-stat timeline -format json -o run.json`
// (add -exemplars there to retain worst-K span trees).
func explainMain(argv []string) {
	fs := flag.NewFlagSet("faasmem-stat explain", flag.ExitOnError)
	window := fs.Int64("window", -1, "window index to explain (-1 auto-picks the worst-P99 window)")
	format := fs.String("format", "text", "output format: text or json")
	outPath := fs.String("o", "", "write output to this file instead of stdout")
	path, rest := splitRunArgs(argv, 1)
	_ = fs.Parse(rest)
	path = append(path, fs.Args()...)
	if len(path) != 1 {
		fmt.Fprintln(os.Stderr, "usage: faasmem-stat explain [-window N] [-format text|json] <run.json>")
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	run, err := drilldown.ReadRun(path[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ex, err := drilldown.Explain(run, *window)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out := openOut(*outPath)
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		err = enc.Encode(ex)
	} else {
		err = drilldown.WriteExplainText(out, ex)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// diffMain is `faasmem-stat diff <runA.json> <runB.json>`: align the two
// runs' windows into a direction-aware regression report. Exit status is 1
// when any regression was flagged, so CI can gate on determinism (identical
// seeds must diff clean) and on latency movements.
func diffMain(argv []string) {
	fs := flag.NewFlagSet("faasmem-stat diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", drilldown.DefaultThreshold,
		"relative worse-direction movement tolerated before flagging a regression")
	format := fs.String("format", "text", "output format: text or json")
	outPath := fs.String("o", "", "write output to this file instead of stdout")
	paths, rest := splitRunArgs(argv, 2)
	_ = fs.Parse(rest)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: faasmem-stat diff [-threshold F] [-format text|json] <baseline.json> <candidate.json>")
		os.Exit(2)
	}
	a, err := drilldown.ReadRun(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b, err := drilldown.ReadRun(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := drilldown.Diff(a, b, *threshold)
	out := openOut(*outPath)
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	} else {
		err = drilldown.WriteDiffText(out, rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rep.Regressions > 0 {
		os.Exit(1)
	}
}

// splitRunArgs peels up to max leading positional (non-flag) arguments off
// argv so run paths may appear before the flags (`explain <run> -window W`)
// as well as after them (trailing positionals come back via fs.Args()).
func splitRunArgs(argv []string, max int) (paths, rest []string) {
	i := 0
	for ; i < len(argv) && len(paths) < max; i++ {
		if argv[i] == "" || argv[i][0] == '-' {
			break
		}
		paths = append(paths, argv[i])
	}
	return paths, argv[i:]
}

// openOut returns stdout or the -o file (exiting on error).
func openOut(path string) io.Writer {
	if path == "" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return f
}
