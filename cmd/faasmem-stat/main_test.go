package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestQuickstartAttributionReconciles is the acceptance check: running the
// quickstart scenario (web profile, a request every 20 s for 10 minutes,
// 10-minute keep-alive, seed 1) through the analyzer must yield per-phase
// P50/P95/P99 breakdowns whose phase columns sum exactly to the end-to-end
// latency they decompose.
func TestQuickstartAttributionReconciles(t *testing.T) {
	const n = 30
	invocations := make([]simtime.Time, n)
	for i := range invocations {
		invocations[i] = simtime.Time(i) * simtime.Time(20*time.Second)
	}
	rec := span.NewRecorder(0)
	experiments.RunScenario(experiments.Scenario{
		Profile:     workload.Web(),
		Invocations: invocations,
		KeepAlive:   10 * time.Minute,
		Policy:      experiments.FaaSMem,
		Seed:        1,
		Spans:       rec,
	})
	invs := rec.Invocations()
	if len(invs) != n {
		t.Fatalf("recorded %d invocations, want %d", len(invs), n)
	}
	an := span.Analyze(invs)
	if an.Overall.N != n {
		t.Fatalf("analysis N = %d, want %d", an.Overall.N, n)
	}
	if len(an.Overall.Breakdowns) != 3 {
		t.Fatalf("want P50/P95/P99 breakdowns, got %d", len(an.Overall.Breakdowns))
	}
	for _, at := range append([]span.Attribution{an.Overall}, an.PerFunction...) {
		for _, bd := range at.Breakdowns {
			var sum time.Duration
			for _, d := range bd.Phase {
				sum += d
			}
			if sum != bd.Total {
				t.Fatalf("%q q=%v: phase sum %v != total %v (drift %v)",
					at.Function, bd.Q, sum, bd.Total, sum-bd.Total)
			}
		}
	}
	// The trees themselves must also tile: every invocation reconciles.
	for _, inv := range invs {
		cp := span.CriticalPath(inv)
		var sum time.Duration
		for _, d := range cp {
			sum += d
		}
		if sum != inv.Total() {
			t.Fatalf("invocation at %v: critical path %v != total %v",
				inv.Root.Start, sum, inv.Total())
		}
	}
}

// TestQuickAttributionGolden pins the -quick text output byte for byte; CI
// regenerates it and diffs, the same determinism gate as the width-1-vs-8
// experiments diff.
func TestQuickAttributionGolden(t *testing.T) {
	rec := span.NewRecorder(span.DefaultCapacity)
	invs := runLive(rec, "web", "faasmem", 0, 0, false, 10*time.Minute, 1, true)
	var buf bytes.Buffer
	if err := span.WriteText(&buf, span.Analyze(invs)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quick_attrib_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("-quick attribution drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestQuickTimelineGolden pins `timeline -quick -fault-intensity 1` byte for
// byte — the faulted per-window rollup, including which windows the flight
// recorder dumped. CI regenerates the same table and diffs.
func TestQuickTimelineGolden(t *testing.T) {
	rec := runTimelineScenario(workload.ByName("web"), experiments.FaaSMem,
		5*time.Minute, 5*time.Second, false, 10*time.Minute, 1, 10*time.Second, 1, 1, nil)
	var buf bytes.Buffer
	if err := timeseries.WriteText(&buf, rec); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quick_timeline_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("-quick timeline drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
