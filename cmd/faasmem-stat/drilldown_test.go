package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/drilldown"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/workload"
)

// writeRunFile captures one faulted quick scenario as a run-file envelope,
// the exact shape `timeline -quick -exemplars -format json` writes.
func writeRunFile(t *testing.T, path string, seed int64) []byte {
	t.Helper()
	exm := exemplar.NewRecorder(exemplar.Config{Window: 10 * time.Second, K: 3})
	rec := runTimelineScenario(workload.ByName("web"), experiments.FaaSMem,
		3*time.Minute, 5*time.Second, false, 10*time.Minute, seed, 10*time.Second, 1, 1, exm)
	data, err := json.MarshalIndent(drilldown.Run{
		Timeline:  timeseries.TakeSnapshot(rec),
		Exemplars: exm.Cells(),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunFileDeterministicAndDiffClean pins the drill-down acceptance pair:
// identical seeds produce byte-identical run files, and diffing them in
// process reports zero regressions (the CI determinism step shells the same
// check through the built binary).
func TestRunFileDeterministicAndDiffClean(t *testing.T) {
	dir := t.TempDir()
	a := writeRunFile(t, filepath.Join(dir, "a.json"), 1)
	b := writeRunFile(t, filepath.Join(dir, "b.json"), 1)
	if !bytes.Equal(a, b) {
		t.Fatal("identical-seed run files differ byte for byte")
	}

	runA, err := drilldown.ReadRun(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	runB, err := drilldown.ReadRun(filepath.Join(dir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep := drilldown.Diff(runA, runB, 0)
	if rep.Regressions != 0 || len(rep.Windows) != 0 {
		t.Fatalf("identical-seed diff not clean: %+v", rep)
	}
	if rep.Aligned == 0 {
		t.Fatal("no windows aligned")
	}

	// A different seed must move something — the diff is not vacuously clean.
	writeRunFile(t, filepath.Join(dir, "c.json"), 9)
	runC, err := drilldown.ReadRun(filepath.Join(dir, "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep := drilldown.Diff(runA, runC, 0); len(rep.Windows) == 0 && len(rep.FlowTotals) == 0 {
		t.Error("cross-seed diff shows no movement at all")
	}
}

// TestExplainCommand exercises the explain subcommand end to end on a real
// run file, both output formats.
func TestExplainCommand(t *testing.T) {
	dir := t.TempDir()
	runPath := filepath.Join(dir, "run.json")
	writeRunFile(t, runPath, 1)

	jsonOut := filepath.Join(dir, "explain.json")
	explainMain([]string{runPath, "-format", "json", "-o", jsonOut})
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var ex drilldown.Explanation
	if err := json.Unmarshal(data, &ex); err != nil {
		t.Fatal(err)
	}
	if !ex.AutoPicked || ex.Summary == nil {
		t.Errorf("explanation = %+v, want auto-picked with a summary row", ex)
	}
	// The spike window may or may not contain ledger rows, but the run-level
	// conservation verdict always rides along.
	if ex.FlowAudit == nil || !ex.FlowAudit.OK {
		t.Errorf("flow audit = %+v, want attached and clean", ex.FlowAudit)
	}

	// Flags may follow the positional path or precede it.
	textOut := filepath.Join(dir, "explain.txt")
	explainMain([]string{"-window", "0", "-o", textOut, runPath})
	text, err := os.ReadFile(textOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) == 0 {
		t.Fatal("text explanation empty")
	}
}

// TestDiffCommand exercises the diff subcommand on identical run files (must
// return without exiting) and checks the JSON report shape.
func TestDiffCommand(t *testing.T) {
	dir := t.TempDir()
	runPath := filepath.Join(dir, "run.json")
	writeRunFile(t, runPath, 1)

	out := filepath.Join(dir, "diff.json")
	diffMain([]string{runPath, runPath, "-format", "json", "-o", out})
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep drilldown.DiffReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 || rep.Aligned == 0 {
		t.Errorf("self-diff report = %+v", rep)
	}
}

func TestSplitRunArgs(t *testing.T) {
	for _, tc := range []struct {
		argv  []string
		max   int
		paths []string
		rest  []string
	}{
		{[]string{"a.json", "-window", "3"}, 1, []string{"a.json"}, []string{"-window", "3"}},
		{[]string{"-window", "3", "a.json"}, 1, nil, []string{"-window", "3", "a.json"}},
		{[]string{"a.json", "b.json", "-threshold", "0.2"}, 2, []string{"a.json", "b.json"}, []string{"-threshold", "0.2"}},
		{[]string{"a.json", "b.json", "c.json"}, 2, []string{"a.json", "b.json"}, []string{"c.json"}},
		{nil, 2, nil, nil},
	} {
		paths, rest := splitRunArgs(tc.argv, tc.max)
		if !reflect.DeepEqual(paths, tc.paths) || !reflect.DeepEqual(rest, tc.rest) {
			t.Errorf("splitRunArgs(%v, %d) = %v, %v; want %v, %v",
				tc.argv, tc.max, paths, rest, tc.paths, tc.rest)
		}
	}
}
