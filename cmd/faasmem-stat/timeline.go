package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/drilldown"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/report"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// timelineMain is the `faasmem-stat timeline` subcommand: run one scenario
// with a time-series recorder attached and render the per-window rollups —
// the single-node sibling of the ext-observe sweep, sharing its renderers
// with the gateway's GET /timeline.
func timelineMain(argv []string) {
	fs := flag.NewFlagSet("faasmem-stat timeline", flag.ExitOnError)
	bench := fs.String("bench", "web", "benchmark: "+strings.Join(workload.Names(), ", "))
	policyName := fs.String("policy", "faasmem", "offloading policy")
	duration := fs.Duration("duration", 30*time.Minute, "trace duration")
	gap := fs.Duration("gap", 10*time.Second, "mean inter-arrival gap")
	bursty := fs.Bool("bursty", false, "bursty (Markov-modulated) arrivals")
	keepAlive := fs.Duration("keepalive", 10*time.Minute, "keep-alive timeout")
	seed := fs.Int64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "CI-sized run: 5-minute duration, 5s gap (overrides -duration/-gap)")
	window := fs.Duration("window", 10*time.Second, "rollup window (virtual time)")
	faultIntensity := fs.Float64("fault-intensity", 0, "fault-plan intensity in [0, 1]; 0 runs fault-free")
	faultSeed := fs.Int64("fault-seed", 0, "fault-schedule seed (default: -seed)")
	exemplars := fs.Bool("exemplars", false, "retain worst-K span trees per window (JSON output becomes a run file for explain/diff)")
	exemplarK := fs.Int("exemplar-k", exemplar.DefaultK, "worst-K retention depth per (window, node, tenant) cell")
	format := fs.String("format", "text", "output format: text, json, or svg")
	outPath := fs.String("o", "", "write output to this file instead of stdout")
	_ = fs.Parse(argv)

	switch *format {
	case "text", "json", "svg":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text, json, or svg)\n", *format)
		os.Exit(2)
	}
	prof := workload.ByName(*bench)
	if prof == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; options: %s\n", *bench, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}
	kind := experiments.PolicyKind(*policyName)
	if !experiments.ValidPolicy(kind) {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	if *faultIntensity < 0 || *faultIntensity > 1 {
		fmt.Fprintf(os.Stderr, "fault intensity %g out of range [0, 1]\n", *faultIntensity)
		os.Exit(2)
	}
	if *quick {
		*duration = 5 * time.Minute
		*gap = 5 * time.Second
	}
	if *faultSeed == 0 {
		*faultSeed = *seed
	}

	var exm *exemplar.Recorder
	if *exemplars {
		exm = exemplar.NewRecorder(exemplar.Config{Window: *window, K: *exemplarK})
	}
	rec := runTimelineScenario(prof, kind, *duration, *gap, *bursty, *keepAlive,
		*seed, *window, *faultIntensity, *faultSeed, exm)

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	var err error
	switch *format {
	case "text":
		err = timeseries.WriteText(out, rec)
		if err == nil && exm != nil {
			if _, err = fmt.Fprintln(out); err == nil {
				err = drilldown.WriteExemplarsText(out, exm.Cells())
			}
		}
	case "json":
		if exm != nil {
			// Run-file envelope: timeline plus exemplars, the input shape
			// of `faasmem-stat explain` / `faasmem-stat diff`.
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			err = enc.Encode(drilldown.Run{
				Timeline:  timeseries.TakeSnapshot(rec),
				Exemplars: exm.Cells(),
			})
		} else {
			err = timeseries.WriteJSON(out, rec)
		}
	case "svg":
		_, err = io.WriteString(out, timelineSVG(rec))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runTimelineScenario executes one scenario with a time-series recorder
// attached and returns the populated recorder.
func runTimelineScenario(prof *workload.Profile, kind experiments.PolicyKind,
	duration, gap time.Duration, bursty bool, keepAlive time.Duration,
	seed int64, window time.Duration, faultIntensity float64, faultSeed int64,
	exm *exemplar.Recorder) *timeseries.Recorder {
	rec := timeseries.NewRecorder(timeseries.Config{Window: window})
	fn := trace.GenerateFunction(prof.Name, duration, gap, bursty, seed)
	sc := experiments.Scenario{
		Profile:     prof,
		Invocations: fn.Invocations,
		Duration:    duration,
		KeepAlive:   keepAlive,
		Policy:      kind,
		SeedHistory: true,
		Seed:        seed,
		Timeline:    rec,
		Exemplars:   exm,
	}
	if faultIntensity > 0 {
		sc.Pool.Faults = faultinject.New(faultinject.Config{
			Horizon:   duration + keepAlive,
			Intensity: faultIntensity,
			Seed:      faultSeed,
		})
	}
	experiments.RunScenario(sc)
	return rec
}

// timelineSVG charts the per-window memory traffic: node-local and pool
// occupancy plus offload/recall volume per window, X = virtual seconds. The
// flight-dump count rides in the title so a faulted run is recognizable at a
// glance.
func timelineSVG(rec *timeseries.Recorder) string {
	summary := timeseries.Summarize(rec)
	local := report.Series{Name: "node local"}
	pool := report.Series{Name: "pool used"}
	offload := report.Series{Name: "offload/window"}
	recall := report.Series{Name: "recall/window"}
	for _, w := range summary {
		local.Points = append(local.Points, report.Point{X: w.StartSec, Y: w.LocalMB})
		pool.Points = append(pool.Points, report.Point{X: w.StartSec, Y: w.PoolMB})
		offload.Points = append(offload.Points, report.Point{X: w.StartSec, Y: w.OffloadMB})
		recall.Points = append(recall.Points, report.Point{X: w.StartSec, Y: w.RecallMB})
	}
	return report.SVGChart(report.ChartOptions{
		Title:  fmt.Sprintf("Memory timeline (%d windows, %d flight dumps)", len(summary), len(rec.Dumps())),
		XLabel: "virtual seconds",
		YLabel: "MB",
		YMin:   0,
	}, local, pool, offload, recall)
}
