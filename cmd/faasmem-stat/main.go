// Command faasmem-stat answers "where does this scenario's latency come
// from": it ingests causal spans — from a span trace file exported by
// faasmem-sim/-attrib-out, or by running a scenario live — and emits
// per-phase P50/P95/P99 attribution tables whose phase columns sum exactly
// to the end-to-end latency they decompose.
//
// Usage:
//
//	faasmem-stat -bench web -policy faasmem -duration 30m       # live run
//	faasmem-stat -quick                                          # CI-sized run
//	faasmem-stat -trace spans.json                               # analyze a file
//	faasmem-stat -bench bert -format json                        # machine-readable
//	faasmem-stat -bench bert -format svg -o attrib.svg           # phase-share chart
//	faasmem-stat -bench web -attrib-out spans.json               # also export spans
//
// The `timeline` subcommand renders per-window time-series rollups instead
// of span attribution (same live-run flags, plus -window and
// -fault-intensity):
//
//	faasmem-stat timeline -bench web -window 10s                 # rollup table
//	faasmem-stat timeline -quick -fault-intensity 1              # faulted, CI-sized
//	faasmem-stat timeline -format svg -o timeline.svg            # memory chart
//	faasmem-stat timeline -quick -exemplars -format json -o run.json  # run file
//
// The `explain` and `diff` subcommands analyze run files written by
// `timeline -format json`:
//
//	faasmem-stat explain run.json                                # worst window
//	faasmem-stat explain run.json -window 12                     # one window
//	faasmem-stat diff base.json cand.json                        # regression report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/report"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "timeline":
			timelineMain(os.Args[2:])
			return
		case "explain":
			explainMain(os.Args[2:])
			return
		case "diff":
			diffMain(os.Args[2:])
			return
		}
	}
	tracePath := flag.String("trace", "", "analyze a span trace file (Chrome trace-event JSON written by -attrib-out) instead of running a scenario")
	bench := flag.String("bench", "web", "benchmark for a live run: "+strings.Join(workload.Names(), ", "))
	policyName := flag.String("policy", "faasmem", "offloading policy for a live run")
	duration := flag.Duration("duration", 30*time.Minute, "trace duration for a live run")
	gap := flag.Duration("gap", 10*time.Second, "mean inter-arrival gap")
	bursty := flag.Bool("bursty", false, "bursty (Markov-modulated) arrivals")
	keepAlive := flag.Duration("keepalive", 10*time.Minute, "keep-alive timeout")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "CI-sized run: 5-minute duration, 5s gap (overrides -duration/-gap)")
	format := flag.String("format", "text", "output format: text, json, or svg")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	attribOut := flag.String("attrib-out", "", "also export the recorded spans as Chrome trace-event JSON (nested duration events; load in https://ui.perfetto.dev)")
	buffer := flag.Int("buffer", span.DefaultCapacity, "invocation ring capacity for live runs; oldest trees drop beyond this")
	flag.Parse()

	switch *format {
	case "text", "json", "svg":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text, json, or svg)\n", *format)
		os.Exit(2)
	}

	var invs []span.Invocation
	var rec *span.Recorder
	if *tracePath != "" {
		var err error
		invs, _, err = span.ReadChromeTraceFile(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		rec = span.NewRecorder(*buffer)
		invs = runLive(rec, *bench, *policyName, *duration, *gap, *bursty, *keepAlive, *seed, *quick)
	}

	if *attribOut != "" {
		if rec == nil {
			fmt.Fprintln(os.Stderr, "-attrib-out requires a live run (spans came from -trace)")
			os.Exit(2)
		}
		if err := span.WriteChromeTraceFile(*attribOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	an := span.Analyze(invs)

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	var err error
	switch *format {
	case "text":
		err = span.WriteText(out, an)
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		err = enc.Encode(an)
	case "svg":
		_, err = io.WriteString(out, attributionSVG(an))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runLive executes one scenario with span recording attached and returns the
// recorded invocations.
func runLive(rec *span.Recorder, bench, policyName string, duration, gap time.Duration, bursty bool, keepAlive time.Duration, seed int64, quick bool) []span.Invocation {
	var prof *workload.Profile
	for _, p := range workload.Profiles() {
		if p.Name == bench {
			prof = p
		}
	}
	if prof == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; options: %s\n", bench, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}
	kind := experiments.PolicyKind(policyName)
	if !experiments.ValidPolicy(kind) {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", policyName)
		os.Exit(2)
	}
	if quick {
		duration = 5 * time.Minute
		gap = 5 * time.Second
	}
	fn := trace.GenerateFunction(bench, duration, gap, bursty, seed)
	experiments.RunScenario(experiments.Scenario{
		Profile:     prof,
		Invocations: fn.Invocations,
		Duration:    duration,
		KeepAlive:   keepAlive,
		Policy:      kind,
		SeedHistory: true,
		Seed:        seed,
		Spans:       rec,
	})
	return rec.Invocations()
}

// attributionSVG charts the overall per-phase latency at each reported
// quantile: x = percentile, y = seconds, one series per phase that ever
// contributes, plus the end-to-end total — a quick visual of which phase
// dominates which percentile.
func attributionSVG(an *span.Analysis) string {
	ov := an.Overall
	total := report.Series{Name: "total"}
	for _, bd := range ov.Breakdowns {
		total.Points = append(total.Points, report.Point{X: bd.Q * 100, Y: bd.Total.Seconds()})
	}
	series := []report.Series{total}
	for p := span.PhaseOther; p < span.NumPhases; p++ {
		if p == span.PhaseRequest {
			continue
		}
		var any bool
		s := report.Series{Name: p.String()}
		for _, bd := range ov.Breakdowns {
			y := bd.Phase[p].Seconds()
			if y > 0 {
				any = true
			}
			s.Points = append(s.Points, report.Point{X: bd.Q * 100, Y: y})
		}
		if any {
			series = append(series, s)
		}
	}
	return report.SVGChart(report.ChartOptions{
		Title:  fmt.Sprintf("Latency attribution by percentile (n=%d)", ov.N),
		XLabel: "percentile",
		YLabel: "seconds",
		YMin:   0,
	}, series...)
}
