// Command faasmem-gateway serves the simulator over HTTP — the evaluation
// workflow analogue of the paper artifact's gateway/test_server pair.
//
//	faasmem-gateway -addr :8080
//	curl -s localhost:8080/benchmarks | jq '.[].Name'
//	curl -s -XPOST localhost:8080/run -d '{"bench":"bert","policy":"faasmem"}'
//	curl -s -XPOST localhost:8080/experiments/fig12 | jq .
//	curl -s localhost:8080/metrics       # Prometheus text format, aggregated over all runs
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"github.com/faasmem/faasmem/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gateway.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("faasmem-gateway listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
