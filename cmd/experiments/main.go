// Command experiments regenerates every table and figure of the paper's
// evaluation and prints the same rows/series the paper reports.
//
// Usage:
//
//	experiments [-only fig12,table1] [-quick] [-seed 42] [-json dir] [-svg dir]
//	            [-parallel N] [-scenario-workers N] [-cpuprofile f] [-memprofile f]
//
// With -quick, durations and trace sizes shrink so the full suite finishes
// in seconds; without it, the defaults match the paper-scale windows
// (1-hour traces, 424-function studies). Experiments run in parallel worker
// goroutines (-parallel), and each figure's scenario grid additionally fans
// out across a scenario-level pool (-scenario-workers, default GOMAXPROCS);
// every simulation is single-threaded and deterministic and rows assemble in
// canonical order, so output is identical at any width. -cpuprofile and
// -memprofile capture pprof profiles of the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/faasmem/faasmem/internal/drilldown"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
)

// job is one experiment: it returns its rows (for -json) and optional SVG
// renderings, writing its human-readable report to w.
type job struct {
	name string
	run  func(w io.Writer) (rows any, svgs map[string]string)
}

func main() {
	only := flag.String("only", "", "comma-separated subset: fig1,fig2,fig4,fig5,fig6,fig8,fig9,fig12,table1,fig13,fig14,fig15,fig16,ext-pools,ext-coldstart,ext-readahead,ext-keepalive,ext-percentile,ext-rack,ext-attrib,ext-pool-density,ext-merge,ext-resilience,ext-observe,ext-drilldown,ext-stateful")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Int64("seed", 42, "random seed for all synthetic traces")
	jsonDir := flag.String("json", "", "also write each experiment's rows as JSON files into this directory (like the artifact's result files)")
	svgDir := flag.String("svg", "", "also write SVG charts of the main figures into this directory (like the artifact's draw scripts)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "number of experiments to run concurrently")
	scenarioWorkers := flag.Int("scenario-workers", 0, "scenario-level fan-out inside each figure's grid (0 = GOMAXPROCS); rows are identical for any width")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	traceOut := flag.String("trace-out", "", "record every harness's simulation events into one Chrome trace-event JSON file; most useful with -only naming a single experiment (parallel experiments interleave in the shared ring)")
	traceBuffer := flag.Int("trace-buffer", telemetry.DefaultCapacity, "event ring capacity for -trace-out")
	attrib := flag.Bool("attrib", false, "record causal spans across every harness and print one latency-attribution table at the end; most useful with -only naming a single experiment")
	timelineOut := flag.String("timeline", "", "record per-window time-series rollups across every harness and write the timeline table to this file ('-' for stdout); most useful with -only naming a single experiment")
	timelineWindow := flag.Duration("timeline-window", 10*time.Second, "rollup window for -timeline (virtual time)")
	exemplarsOut := flag.String("exemplars", "", "retain worst-K span trees per window across every harness and write the exemplar digest to this file ('-' for stdout); most useful with -only naming a single experiment")
	exemplarK := flag.Int("exemplar-k", exemplar.DefaultK, "worst-K retention depth for -exemplars")
	flag.Parse()

	experiments.SetWorkers(*scenarioWorkers)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	for _, dir := range []string{*jsonDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}

	scale := func(full, quickv time.Duration) time.Duration {
		if *quick {
			return quickv
		}
		return full
	}

	// Experiment harnesses pick up the process-default hub (Scenario.Telemetry
	// falls back to it), so one flag traces every figure without plumbing.
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(*traceBuffer)
		telemetry.SetDefault(telemetry.Hub{Tracer: tracer, Reg: telemetry.NewRegistry()})
	}
	// Same fallback scheme for spans: Scenario.Spans defaults to the process
	// recorder, so one flag attributes every figure's latency.
	var spans *span.Recorder
	if *attrib {
		spans = span.NewRecorder(span.DefaultCapacity)
		span.SetDefault(spans)
	}
	// And for the timeline: Scenario.Timeline defaults to the process
	// recorder, so one flag rolls up every figure into windowed series.
	var timeline *timeseries.Recorder
	if *timelineOut != "" {
		timeline = timeseries.NewRecorder(timeseries.Config{Window: *timelineWindow})
		timeseries.SetDefault(timeline)
	}
	// And for exemplars: Scenario.Exemplars defaults to the process
	// recorder, so one flag retains worst-K span trees across every figure.
	var exemplars *exemplar.Recorder
	if *exemplarsOut != "" {
		exemplars = exemplar.NewRecorder(exemplar.Config{Window: *timelineWindow, K: *exemplarK})
		exemplar.SetDefault(exemplars)
	}

	jobs := buildJobs(*seed, *quick, scale)
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	var selected []job
	for _, j := range jobs {
		if len(want) == 0 || want[j.name] {
			selected = append(selected, j)
		}
	}

	// Run jobs in a bounded worker pool; buffer output per job so the
	// report prints in canonical order regardless of completion order.
	type result struct {
		out  bytes.Buffer
		rows any
		svgs map[string]string
	}
	results := make([]result, len(selected))
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range selected {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i].rows, results[i].svgs = selected[i].run(&results[i].out)
		}(i)
	}
	wg.Wait()

	for i, j := range selected {
		os.Stdout.Write(results[i].out.Bytes())
		fmt.Println()
		if *jsonDir != "" && results[i].rows != nil {
			writeJSON(filepath.Join(*jsonDir, j.name+".json"), results[i].rows)
		}
		if *svgDir != "" {
			for name, svg := range results[i].svgs {
				if err := os.WriteFile(filepath.Join(*svgDir, name+".svg"), []byte(svg), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}

	if tracer != nil {
		if err := telemetry.WriteChromeTraceFile(*traceOut, tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events (%d dropped) written to %s — open in https://ui.perfetto.dev\n",
			tracer.Total(), tracer.Dropped(), *traceOut)
	}
	if spans != nil {
		if err := span.WriteText(os.Stdout, span.Analyze(spans.Invocations())); err != nil {
			fatal(err)
		}
	}
	if timeline != nil {
		out := io.Writer(os.Stdout)
		if *timelineOut != "-" {
			f, err := os.Create(*timelineOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := timeseries.WriteText(out, timeline); err != nil {
			fatal(err)
		}
	}
	if exemplars != nil {
		out := io.Writer(os.Stdout)
		if *exemplarsOut != "-" {
			f, err := os.Create(*exemplarsOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := drilldown.WriteExemplarsText(out, exemplars.Cells()); err != nil {
			fatal(err)
		}
	}
}

// buildJobs lists every experiment in presentation order.
func buildJobs(seed int64, quick bool, scale func(full, quickv time.Duration) time.Duration) []job {
	return []job{
		{"fig1", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig1(experiments.Fig1Options{Seed: seed})
			experiments.PrintFig1(w, rows)
			return rows, map[string]string{"fig1": experiments.SVGFig1(rows)}
		}},
		{"fig2", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig2(experiments.Fig2Options{
				Duration: scale(time.Hour, 15*time.Minute),
				Seed:     seed,
			})
			experiments.PrintFig2(w, rows)
			return rows, map[string]string{"fig2": experiments.SVGFig2(rows)}
		}},
		{"fig4", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig4()
			experiments.PrintFig4(w, rows)
			return rows, nil
		}},
		{"fig5", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig5(experiments.Fig5Options{Seed: seed})
			experiments.PrintFig5(w, rows)
			return rows, map[string]string{"fig5": experiments.SVGFig5(rows)}
		}},
		{"fig6", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig6(experiments.Fig6Options{Seed: seed})
			experiments.PrintFig6(w, rows)
			return rows, nil
		}},
		{"fig8", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig8(experiments.Fig8Options{Seed: seed})
			experiments.PrintFig8(w, rows)
			return rows, nil
		}},
		{"fig9", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig9(25, seed)
			experiments.PrintFig9(w, rows)
			return rows, nil
		}},
		{"fig12", func(w io.Writer) (any, map[string]string) {
			opt := experiments.Fig12Options{Duration: scale(time.Hour, 10*time.Minute), Seed: seed}
			if quick {
				opt.Benches = []string{"bert", "graph", "web", "json"}
			}
			rows := experiments.Fig12(opt)
			experiments.PrintFig12(w, rows)
			return rows, nil
		}},
		{"table1", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Table1(experiments.Table1Options{
				Duration: scale(30*time.Minute, 8*time.Minute),
				Seed:     seed,
			})
			experiments.PrintTable1(w, rows)
			return rows, nil
		}},
		{"fig13", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig13(experiments.Fig13Options{
				Duration:     scale(time.Hour, 12*time.Minute),
				Seed:         seed,
				WithTimeline: true,
			})
			experiments.PrintFig13(w, rows)
			return rows, map[string]string{"fig13": experiments.SVGFig13(rows)}
		}},
		{"fig14", func(w io.Writer) (any, map[string]string) {
			opt := experiments.Fig14Options{Seed: seed}
			if quick {
				opt.NumFunctions = 80
				opt.Duration = 2 * time.Hour
			}
			rows := experiments.Fig14(opt)
			experiments.PrintFig14(w, rows)
			return rows, map[string]string{"fig14": experiments.SVGFig14(rows)}
		}},
		{"fig15", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Fig15()
			experiments.PrintFig15(w, rows)
			return rows, nil
		}},
		{"fig16", func(w io.Writer) (any, map[string]string) {
			opt := experiments.Fig16Options{Seed: seed}
			if quick {
				opt.Traces = 6
				opt.Duration = 10 * time.Minute
			}
			rows := experiments.Fig16(opt)
			experiments.PrintFig16(w, rows)
			return rows, map[string]string{"fig16": experiments.SVGFig16(rows)}
		}},
		{"ext-pools", func(w io.Writer) (any, map[string]string) {
			rows := experiments.PoolComparison(experiments.PoolComparisonOptions{
				Duration: scale(20*time.Minute, 8*time.Minute),
				Seed:     seed,
			})
			experiments.PrintPoolComparison(w, rows)
			return rows, nil
		}},
		{"ext-coldstart", func(w io.Writer) (any, map[string]string) {
			rows := experiments.ColdStartTiming(experiments.ColdStartTimingOptions{
				Duration: scale(20*time.Minute, 8*time.Minute),
				Seed:     seed,
			})
			experiments.PrintColdStartTiming(w, rows)
			return rows, nil
		}},
		{"ext-readahead", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Readahead(experiments.ReadaheadOptions{
				Duration: scale(20*time.Minute, 8*time.Minute),
				Seed:     seed,
			})
			experiments.PrintReadahead(w, rows)
			return rows, map[string]string{"ext-readahead": experiments.SVGReadahead(rows)}
		}},
		{"ext-keepalive", func(w io.Writer) (any, map[string]string) {
			rows := experiments.KeepAliveStrategies(experiments.KeepAliveStrategiesOptions{
				Duration: scale(30*time.Minute, 10*time.Minute),
				Seed:     seed,
			})
			experiments.PrintKeepAliveStrategies(w, rows)
			return rows, nil
		}},
		{"ext-percentile", func(w io.Writer) (any, map[string]string) {
			rows := experiments.PercentileSweep(experiments.PercentileSweepOptions{
				Duration: scale(20*time.Minute, 8*time.Minute),
				Seed:     seed,
			})
			experiments.PrintPercentileSweep(w, rows)
			return rows, nil
		}},
		{"ext-rack", func(w io.Writer) (any, map[string]string) {
			rows := experiments.RackDensity(experiments.RackDensityOptions{
				Duration: scale(20*time.Minute, 8*time.Minute),
				Seed:     seed,
			})
			experiments.PrintRackDensity(w, rows)
			return rows, nil
		}},
		{"ext-attrib", func(w io.Writer) (any, map[string]string) {
			rows := experiments.AttribPressure(experiments.AttribPressureOptions{
				Duration: scale(30*time.Minute, 10*time.Minute),
				Seed:     seed,
			})
			experiments.PrintAttribPressure(w, rows)
			return rows, nil
		}},
		{"ext-pool-density", func(w io.Writer) (any, map[string]string) {
			rows := experiments.PoolDensity(experiments.PoolDensityOptions{
				DRAMMBs:  []int{256, 512},
				Duration: scale(15*time.Minute, 6*time.Minute),
				Seed:     seed,
			})
			experiments.PrintPoolDensity(w, rows)
			return rows, nil
		}},
		{"ext-merge", func(w io.Writer) (any, map[string]string) {
			rows := experiments.MergeDomains(experiments.MergeDomainsOptions{
				Duration: scale(15*time.Minute, 6*time.Minute),
				Seed:     seed,
			})
			experiments.PrintMergeDomains(w, rows)
			return rows, nil
		}},
		{"ext-resilience", func(w io.Writer) (any, map[string]string) {
			rows := experiments.Resilience(experiments.ResilienceOptions{
				Duration:  scale(12*time.Minute, 5*time.Minute),
				KeepAlive: scale(10*time.Minute, 4*time.Minute),
				Seed:      seed,
				FaultSeed: seed,
			})
			experiments.PrintResilience(w, rows)
			return rows, nil
		}},
		{"ext-observe", func(w io.Writer) (any, map[string]string) {
			cells := experiments.Observe(experiments.ObserveOptions{
				Duration:  scale(10*time.Minute, 4*time.Minute),
				KeepAlive: scale(8*time.Minute, 3*time.Minute),
				Fallback:  true,
				Seed:      seed,
				FaultSeed: seed,
			})
			experiments.PrintObserve(w, cells)
			return cells, nil
		}},
		{"ext-drilldown", func(w io.Writer) (any, map[string]string) {
			cells := experiments.Drilldown(experiments.DrilldownOptions{
				Duration:  scale(10*time.Minute, 4*time.Minute),
				KeepAlive: scale(8*time.Minute, 3*time.Minute),
				Seed:      seed,
				FaultSeed: seed,
			})
			experiments.PrintDrilldown(w, cells)
			return cells, nil
		}},
		{"ext-stateful", func(w io.Writer) (any, map[string]string) {
			opt := experiments.StatefulOptions{Seed: seed}
			if quick {
				opt.Workflows = []string{"pipeline", "fanout", "websession"}
				opt.Widths = []int{8}
				opt.PressuresMB = []int{64}
				opt.Runs = 3
			}
			rows := experiments.Stateful(opt)
			experiments.PrintStateful(w, rows)
			return rows, nil
		}},
	}
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
