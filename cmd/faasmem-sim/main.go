// Command faasmem-sim runs a single serverless memory-offloading scenario
// and prints its outcome: one benchmark, one policy, one synthetic
// invocation timeline (or a real Azure CSV trace function).
//
// Usage:
//
//	faasmem-sim -bench bert -policy faasmem -duration 30m -gap 10s -bursty
//	faasmem-sim -bench web -compare
//	faasmem-sim -profiles my-profiles.json -bench mysvc -policy faasmem
//	faasmem-sim -azure trace.csv -policy faasmem     # busiest trace function
//	faasmem-sim -bench web -trace-out trace.json     # Perfetto-loadable trace
//
// Policies: baseline, tmo, damon, faasmem, faasmem-w/o-pucket,
// faasmem-w/o-semiwarm.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/faasmem/faasmem/internal/drilldown"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/faultinject"
	"github.com/faasmem/faasmem/internal/report"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

func main() {
	bench := flag.String("bench", "bert", "benchmark: "+strings.Join(workload.Names(), ", "))
	policyName := flag.String("policy", "faasmem", "offloading policy")
	duration := flag.Duration("duration", 30*time.Minute, "trace duration")
	gap := flag.Duration("gap", 10*time.Second, "mean inter-arrival gap")
	bursty := flag.Bool("bursty", false, "bursty (Markov-modulated) arrivals")
	keepAlive := flag.Duration("keepalive", 10*time.Minute, "keep-alive timeout")
	seed := flag.Int64("seed", 1, "random seed")
	compare := flag.Bool("compare", false, "run every policy on the same trace and print a comparison table")
	profilesPath := flag.String("profiles", "", "JSON file with extra workload profiles (see workload.WriteProfiles)")
	azurePath := flag.String("azure", "", "replay the busiest function of a real Azure Functions Invocation Trace 2021 CSV instead of generating arrivals")
	traceDump := flag.Bool("trace", false, "record simulation events and dump them human-readably after the run")
	traceOut := flag.String("trace-out", "", "record simulation events and write a Chrome trace-event JSON file (load in https://ui.perfetto.dev)")
	traceBuffer := flag.Int("trace-buffer", telemetry.DefaultCapacity, "event ring capacity; oldest events drop beyond this")
	attrib := flag.Bool("attrib", false, "record causal spans and print a per-phase latency attribution table after the run")
	timeline := flag.Bool("timeline", false, "record per-window time-series rollups and print the timeline table after the run")
	timelineWindow := flag.Duration("timeline-window", 10*time.Second, "rollup window for -timeline and -exemplars (virtual time)")
	exemplars := flag.Bool("exemplars", false, "retain worst-K span trees per window and print the tail-exemplar digest after the run")
	exemplarK := flag.Int("exemplar-k", exemplar.DefaultK, "worst-K retention depth per (window, node, tenant) cell for -exemplars")
	faultIntensity := flag.Float64("fault-intensity", 0, "arm a seed-driven fault plan at this intensity in [0, 1] (link flaps, pool crashes, tier storms, latency spikes); 0 runs fault-free")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault schedule; defaults to -seed")
	attribOut := flag.String("attrib-out", "", "record causal spans and write them as Chrome trace-event JSON (nested duration events; implies span recording)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}
	benchPinned := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "bench" {
			benchPinned = true
		}
	})

	available := workload.Profiles()
	if *profilesPath != "" {
		extra, err := workload.LoadProfiles(*profilesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		available = append(available, extra...)
	}
	byName := func(name string) *workload.Profile {
		for _, p := range available {
			if p.Name == name {
				return p
			}
		}
		return nil
	}
	names := make([]string, len(available))
	for i, p := range available {
		names[i] = p.Name
	}

	prof := byName(*bench)
	if prof == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; options: %s\n", *bench, strings.Join(names, ", "))
		os.Exit(2)
	}
	kind := experiments.PolicyKind(*policyName)
	if !experiments.ValidPolicy(kind) {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	if *faultIntensity < 0 || *faultIntensity > 1 {
		fmt.Fprintf(os.Stderr, "-fault-intensity %g out of range [0, 1]\n", *faultIntensity)
		os.Exit(2)
	}
	if *faultSeed == 0 {
		*faultSeed = *seed
	}

	var fn *trace.Function
	if *azurePath != "" {
		var err error
		fn, prof, err = azureFunction(*azurePath, prof, available, benchPinned)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		*duration = lastInvocation(fn) + time.Second
	} else {
		fn = trace.GenerateFunction(*bench, *duration, *gap, *bursty, *seed)
	}
	if *compare {
		fmt.Printf("%s: %d requests over %v (gap %v, bursty=%v)\n\n", prof.Name, len(fn.Invocations), *duration, *gap, *bursty)
		fmt.Printf("  %-22s %8s %8s %8s %12s %12s\n", "policy", "P50", "P95", "P99", "avg mem", "offloaded")
		for _, pk := range experiments.PolicyKinds() {
			o := experiments.RunScenario(experiments.Scenario{
				Profile:     prof,
				Invocations: fn.Invocations,
				Duration:    *duration,
				KeepAlive:   *keepAlive,
				Policy:      pk,
				SeedHistory: true,
				Seed:        *seed,
			})
			fmt.Printf("  %-22s %7.3fs %7.3fs %7.3fs %9.1f MB %9.1f MB\n",
				pk, o.P50, o.P95, o.P99, o.AvgLocalMB, o.OffloadedMB)
		}
		return
	}
	var hub telemetry.Hub
	if *traceDump || *traceOut != "" {
		hub = telemetry.Hub{
			Tracer: telemetry.NewTracer(*traceBuffer),
			Reg:    telemetry.NewRegistry(),
		}
	}
	var spans *span.Recorder
	if *attrib || *attribOut != "" {
		spans = span.NewRecorder(span.DefaultCapacity)
	}
	var tl *timeseries.Recorder
	if *timeline {
		tl = timeseries.NewRecorder(timeseries.Config{Window: *timelineWindow})
	}
	var exm *exemplar.Recorder
	if *exemplars {
		exm = exemplar.NewRecorder(exemplar.Config{Window: *timelineWindow, K: *exemplarK})
	}
	sc := experiments.Scenario{
		Profile:     prof,
		Invocations: fn.Invocations,
		Duration:    *duration,
		KeepAlive:   *keepAlive,
		Policy:      kind,
		SeedHistory: true,
		Seed:        *seed,
		Telemetry:   hub,
		Spans:       spans,
		Timeline:    tl,
		Exemplars:   exm,
	}
	if *faultIntensity > 0 {
		sc.Pool.Faults = faultinject.New(faultinject.Config{
			Horizon:   *duration + *keepAlive,
			Intensity: *faultIntensity,
			Seed:      *faultSeed,
		})
	}
	out := experiments.RunScenario(sc)

	ok := out.Requests > 0
	fmt.Printf("benchmark        %s (%s policy)\n", prof.Name, kind)
	fmt.Printf("requests         %d  (cold %d, warm %d, semi-warm %d)\n",
		out.Requests, out.ColdStarts, out.WarmStarts, out.SemiWarmStarts)
	fmt.Printf("latency          avg %s  P50 %s  P95 %s  P99 %s\n",
		report.Stat("%.3fs", out.AvgLat, ok), report.Stat("%.3fs", out.P50, ok),
		report.Stat("%.3fs", out.P95, ok), report.Stat("%.3fs", out.P99, ok))
	fmt.Printf("local memory     avg %.1f MB  peak %.1f MB\n", out.AvgLocalMB, out.PeakLocalMB)
	fmt.Printf("remote memory    avg %.1f MB\n", out.AvgRemoteMB)
	fmt.Printf("pool traffic     offloaded %.1f MB (%.3f MB/s)  recalled %.1f MB (%.3f MB/s)\n",
		out.OffloadedMB, out.OffloadBWMBps, out.RecalledMB, out.RecallBWMBps)
	fmt.Printf("page faults      %d (runtime segment: %d)\n", out.FaultPages, out.RuntimeFaultPages)
	if cs := out.CoreStats; cs != nil {
		fmt.Printf("faasmem          runtime offloads %d, init offloads %d, rollbacks %d, semi-warm entries %d\n",
			cs.RuntimeOffloads, cs.InitOffloads, cs.Rollbacks, cs.SemiWarmEntries)
	}
	if rec := out.Recovery; rec != nil {
		fmt.Printf("fault recovery   retries %d, timeouts %d, fallback pages %d, cold re-inits %d\n",
			rec.FetchRetries, rec.FetchTimeouts, rec.FallbackPages, rec.ColdReinits)
		fmt.Printf("completions      normal %d, rescheduled %d, re-init %d\n",
			rec.DoneNormal, rec.DoneRescheduled, rec.DoneReinit)
	}

	if tr := hub.Tracer; tr != nil {
		fmt.Printf("telemetry        %d events recorded (%d dropped by the %d-event ring)\n",
			tr.Total(), tr.Dropped(), *traceBuffer)
		if *traceOut != "" {
			if err := telemetry.WriteChromeTraceFile(*traceOut, tr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("trace written    %s  (open in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
		}
		if *traceDump {
			fmt.Println()
			if err := telemetry.WriteText(os.Stdout, tr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if spans != nil {
		if *attribOut != "" {
			if err := span.WriteChromeTraceFile(*attribOut, spans); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("spans written    %s  (faasmem-stat -trace %s, or load in https://ui.perfetto.dev)\n", *attribOut, *attribOut)
		}
		if *attrib {
			fmt.Println()
			if err := span.WriteText(os.Stdout, span.Analyze(spans.Invocations())); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if tl != nil {
		fmt.Println()
		if err := timeseries.WriteText(os.Stdout, tl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if exm != nil {
		fmt.Println()
		if err := drilldown.WriteExemplarsText(os.Stdout, exm.Cells()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// azureFunction loads a real Azure CSV and returns its busiest function,
// paired with the available profile whose execution time is nearest the
// function's measured mean duration (unless the user pinned -bench).
func azureFunction(path string, pinned *workload.Profile, available []*workload.Profile, userPinned bool) (*trace.Function, *workload.Profile, error) {
	tr, durations, err := trace.LoadAzureCSV(path)
	if err != nil {
		return nil, nil, err
	}
	var busiest *trace.Function
	for _, f := range tr.Functions {
		if busiest == nil || len(f.Invocations) > len(busiest.Invocations) {
			busiest = f
		}
	}
	prof := pinned
	if !userPinned {
		mean := trace.MeanDuration(durations[busiest.ID])
		best := math.Inf(1)
		for _, p := range available {
			if d := math.Abs((p.ExecTime - mean).Seconds()); d < best {
				best = d
				prof = p
			}
		}
	}
	fmt.Printf("azure trace %s: replaying %q (%d invocations, mean duration %v) as %q\n",
		path, busiest.ID, len(busiest.Invocations),
		trace.MeanDuration(durations[busiest.ID]).Round(time.Millisecond), prof.Name)
	return busiest, prof, nil
}

func lastInvocation(f *trace.Function) simtime.Time {
	if len(f.Invocations) == 0 {
		return 0
	}
	return f.Invocations[len(f.Invocations)-1]
}
