package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: github.com/faasmem/faasmem
BenchmarkFig1KeepAliveSweep-4   	       3	  33521969 ns/op	23327176 B/op	   46988 allocs/op
BenchmarkAblationPolicies/baseline-4         	      10	   1200000 ns/op
BenchmarkAblationRequestWindow/adaptive-4    	       5	   2000000 ns/op	       512.0 avgMB	       42.0 faults
some unrelated log line
PASS
ok  	github.com/faasmem/faasmem	12.3s
`
	results, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	fig1, ok := byName["Fig1KeepAliveSweep"]
	if !ok {
		t.Fatalf("Fig1KeepAliveSweep missing (GOMAXPROCS suffix not stripped?): %+v", results)
	}
	if fig1.Iterations != 3 || fig1.NsPerOp != 33521969 || fig1.BytesPerOp != 23327176 || fig1.AllocsOp != 46988 {
		t.Errorf("Fig1 parsed wrong: %+v", fig1)
	}
	if _, ok := byName["AblationPolicies/baseline"]; !ok {
		t.Errorf("sub-benchmark name not preserved: %+v", results)
	}
	rw := byName["AblationRequestWindow/adaptive"]
	if rw.Metrics["avgMB"] != 512 || rw.Metrics["faults"] != 42 {
		t.Errorf("custom metrics not captured: %+v", rw)
	}
}

func TestSpeedups(t *testing.T) {
	base := []Result{
		{Name: "Fig1KeepAliveSweep", NsPerOp: 33521969},
		{Name: "OnlyInBaseline", NsPerOp: 100},
	}
	cur := []Result{
		{Name: "Fig1KeepAliveSweep", NsPerOp: 10182569},
		{Name: "OnlyInCurrent", NsPerOp: 50},
	}
	s := speedups(base, cur)
	if len(s) != 1 {
		t.Fatalf("speedups = %v, want 1 shared entry", s)
	}
	if got := s["Fig1KeepAliveSweep"]; got < 3.0 || got > 3.6 {
		t.Errorf("Fig1 speedup = %.2f, want ~3.29", got)
	}
}

func TestLoadLatestPicksHighestNumber(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, res []Result) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(Doc{Benchmarks: res})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write("BENCH_BASELINE.json", []Result{{Name: "A", NsPerOp: 1}})
	write("BENCH_2.json", []Result{{Name: "A", NsPerOp: 2}})
	write("BENCH_10.json", []Result{{Name: "A", NsPerOp: 10}})
	out := write("BENCH_11.json", []Result{{Name: "A", NsPerOp: 11}})

	// BENCH_11 is the -o target and must be skipped; BENCH_10 beats BENCH_2
	// numerically even though it sorts earlier lexicographically, and the
	// baseline has no numeric suffix so it never wins.
	path, prior, err := loadLatest(filepath.Join(dir, "BENCH_*.json"), out)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_10.json" {
		t.Fatalf("picked %s, want BENCH_10.json", path)
	}
	if len(prior) != 1 || prior[0].NsPerOp != 10 {
		t.Fatalf("prior = %+v, want the BENCH_10 results", prior)
	}

	path, _, err = loadLatest(filepath.Join(dir, "NOPE_*.json"), "")
	if err != nil || path != "" {
		t.Fatalf("empty glob: path=%q err=%v, want no match and no error", path, err)
	}
}

func TestCheckAllocs(t *testing.T) {
	prior := []Result{
		{Name: "Big", AllocsOp: 1000},
		{Name: "Tiny", AllocsOp: 4},
		{Name: "Gone", AllocsOp: 50},
	}
	var buf bytes.Buffer
	// 25% over on a large count trips the 10% gate.
	if checkAllocs(&buf, "x.json", prior, []Result{{Name: "Big", AllocsOp: 1250}}, 10) {
		t.Errorf("25%% regression on 1000 allocs passed the 10%% gate:\n%s", buf.String())
	}
	// A single extra allocation on a tiny count is inside the absolute slack.
	if !checkAllocs(&buf, "x.json", prior, []Result{{Name: "Tiny", AllocsOp: 5}}, 10) {
		t.Errorf("4 -> 5 allocs tripped the gate despite the slack:\n%s", buf.String())
	}
	// Improvements and benchmarks absent from the snapshot pass.
	if !checkAllocs(&buf, "x.json", prior, []Result{
		{Name: "Big", AllocsOp: 100},
		{Name: "New", AllocsOp: 1e6},
	}, 10) {
		t.Errorf("improvement + new benchmark tripped the gate:\n%s", buf.String())
	}
}

func TestParseLineRejectsChatter(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	github.com/faasmem/faasmem	12.3s",
		"Benchmarking is fun",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
