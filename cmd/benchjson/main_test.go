package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: github.com/faasmem/faasmem
BenchmarkFig1KeepAliveSweep-4   	       3	  33521969 ns/op	23327176 B/op	   46988 allocs/op
BenchmarkAblationPolicies/baseline-4         	      10	   1200000 ns/op
BenchmarkAblationRequestWindow/adaptive-4    	       5	   2000000 ns/op	       512.0 avgMB	       42.0 faults
some unrelated log line
PASS
ok  	github.com/faasmem/faasmem	12.3s
`
	results, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	fig1, ok := byName["Fig1KeepAliveSweep"]
	if !ok {
		t.Fatalf("Fig1KeepAliveSweep missing (GOMAXPROCS suffix not stripped?): %+v", results)
	}
	if fig1.Iterations != 3 || fig1.NsPerOp != 33521969 || fig1.BytesPerOp != 23327176 || fig1.AllocsOp != 46988 {
		t.Errorf("Fig1 parsed wrong: %+v", fig1)
	}
	if _, ok := byName["AblationPolicies/baseline"]; !ok {
		t.Errorf("sub-benchmark name not preserved: %+v", results)
	}
	rw := byName["AblationRequestWindow/adaptive"]
	if rw.Metrics["avgMB"] != 512 || rw.Metrics["faults"] != 42 {
		t.Errorf("custom metrics not captured: %+v", rw)
	}
}

func TestSpeedups(t *testing.T) {
	base := []Result{
		{Name: "Fig1KeepAliveSweep", NsPerOp: 33521969},
		{Name: "OnlyInBaseline", NsPerOp: 100},
	}
	cur := []Result{
		{Name: "Fig1KeepAliveSweep", NsPerOp: 10182569},
		{Name: "OnlyInCurrent", NsPerOp: 50},
	}
	s := speedups(base, cur)
	if len(s) != 1 {
		t.Fatalf("speedups = %v, want 1 shared entry", s)
	}
	if got := s["Fig1KeepAliveSweep"]; got < 3.0 || got > 3.6 {
		t.Errorf("Fig1 speedup = %.2f, want ~3.29", got)
	}
}

func TestParseLineRejectsChatter(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	github.com/faasmem/faasmem	12.3s",
		"Benchmarking is fun",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
