// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document, one entry per benchmark with its ns/op, B/op, allocs/op and
// any custom ReportMetric units. The CI regression gate and `make bench-json`
// use it to snapshot benchmark results (BENCH_2.json) so perf changes show up
// in review as a diff instead of a buried log line.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_3.json
//	benchjson -o BENCH_3.json bench_output.txt
//
// Lines that are not benchmark results (test chatter, PASS/ok trailers) are
// ignored, so the full `go test` stream can be piped in unfiltered.
//
// With -latest GLOB the tool also loads the most recent committed snapshot
// matching the glob (highest numeric suffix, the -o target excluded) and
// prints a per-benchmark ns/op speedup table to stderr. -allocs-gate PCT
// turns that comparison into a regression gate: the exit status is nonzero
// if any benchmark's allocs/op grew more than PCT percent over the snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed measurements. Metrics maps the unit
// string (e.g. "ns/op", "B/op", "avgMB") to its value.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document. When a baseline snapshot is supplied the
// prior results are embedded and per-benchmark ns/op speedups computed, so
// the regression gate is one file.
type Doc struct {
	Benchmarks []Result `json:"benchmarks"`
	Baseline   []Result `json:"baseline,omitempty"`
	// SpeedupVsBaseline maps benchmark name to baseline ns/op ÷ current
	// ns/op (> 1 means faster now).
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

// gomaxprocsSuffix strips the trailing "-N" CPU count go test appends, so the
// JSON keys stay stable across machines with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	baseline := flag.String("baseline", "", "prior benchjson snapshot to embed and compute ns/op speedups against (missing file is skipped)")
	latest := flag.String("latest", "", "glob of committed snapshots; compare against the highest-numbered match (excluding -o) and print per-bench speedups")
	allocsGate := flag.Float64("allocs-gate", 0, "with -latest: exit nonzero if any benchmark's allocs/op regressed more than this percentage")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	results, err := Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	doc := Doc{Benchmarks: results}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "benchjson: baseline %s not found, skipping comparison\n", *baseline)
			} else {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			doc.Baseline = base
			doc.SpeedupVsBaseline = speedups(base, results)
		}
	}

	gateOK := true
	if *latest != "" {
		path, prior, err := loadLatest(*latest, *out)
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		case path == "":
			fmt.Fprintf(os.Stderr, "benchjson: no snapshot matches %q, skipping comparison\n", *latest)
		default:
			printComparison(os.Stderr, path, prior, results)
			if *allocsGate > 0 {
				gateOK = checkAllocs(os.Stderr, path, prior, results, *allocsGate)
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !gateOK {
		os.Exit(1)
	}
}

// snapshotNum extracts the numeric suffix of BENCH_<n>.json-style names.
var snapshotNum = regexp.MustCompile(`_(\d+)\.json$`)

// loadLatest resolves the glob to the snapshot with the highest numeric
// suffix, skipping the output target and files without a numeric suffix
// (e.g. BENCH_BASELINE.json). It returns ("" , nil, nil) when nothing
// matches, so a fresh checkout degrades to a plain conversion.
func loadLatest(glob, exclude string) (string, []Result, error) {
	matches, err := filepath.Glob(glob)
	if err != nil {
		return "", nil, fmt.Errorf("benchjson: bad -latest glob: %v", err)
	}
	best, bestN := "", -1
	for _, m := range matches {
		if exclude != "" && filepath.Clean(m) == filepath.Clean(exclude) {
			continue
		}
		sub := snapshotNum.FindStringSubmatch(m)
		if sub == nil {
			continue
		}
		if n, err := strconv.Atoi(sub[1]); err == nil && n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", nil, nil
	}
	prior, err := loadBaseline(best)
	if err != nil {
		return "", nil, err
	}
	return best, prior, nil
}

// printComparison writes a per-benchmark ns/op speedup table versus the
// prior snapshot (>1.00x means this run is faster).
func printComparison(w io.Writer, path string, prior, cur []Result) {
	priorBy := make(map[string]Result, len(prior))
	for _, r := range prior {
		priorBy[r.Name] = r
	}
	fmt.Fprintf(w, "benchjson: vs %s (ns/op, speedup >1 is faster):\n", path)
	for _, r := range cur {
		p, ok := priorBy[r.Name]
		if !ok || p.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		fmt.Fprintf(w, "  %-44s %14.0f -> %12.0f  %6.2fx\n",
			r.Name, p.NsPerOp, r.NsPerOp, p.NsPerOp/r.NsPerOp)
	}
}

// checkAllocs fails benchmarks whose allocs/op grew more than pct percent
// over the prior snapshot. A small absolute slack (8 allocs) keeps tiny
// deterministic counts — where a single extra allocation clears any
// percentage bar — from tripping the gate.
func checkAllocs(w io.Writer, path string, prior, cur []Result, pct float64) bool {
	const slack = 8
	priorBy := make(map[string]Result, len(prior))
	for _, r := range prior {
		priorBy[r.Name] = r
	}
	ok := true
	for _, r := range cur {
		p, found := priorBy[r.Name]
		if !found {
			continue
		}
		limit := p.AllocsOp * (1 + pct/100)
		if r.AllocsOp > limit && r.AllocsOp > p.AllocsOp+slack {
			fmt.Fprintf(w, "benchjson: ALLOCS REGRESSION %s: %.0f allocs/op vs %.0f in %s (>%.0f%% + %d)\n",
				r.Name, r.AllocsOp, p.AllocsOp, path, pct, slack)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(w, "benchjson: allocs/op gate vs %s passed (threshold %.0f%%)\n", path, pct)
	}
	return ok
}

// loadBaseline reads a prior snapshot — either a Doc or a bare result list.
func loadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err == nil && len(doc.Benchmarks) > 0 {
		return doc.Benchmarks, nil
	}
	var list []Result
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("benchjson: %s is neither a snapshot document nor a result list: %v", path, err)
	}
	return list, nil
}

// speedups computes baseline ns/op ÷ current ns/op for benchmarks present in
// both snapshots.
func speedups(base, cur []Result) map[string]float64 {
	baseNs := make(map[string]float64, len(base))
	for _, r := range base {
		if r.NsPerOp > 0 {
			baseNs[r.Name] = r.NsPerOp
		}
	}
	out := map[string]float64{}
	for _, r := range cur {
		if b, ok := baseNs[r.Name]; ok && r.NsPerOp > 0 {
			out[r.Name] = b / r.NsPerOp
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Parse reads a `go test -bench` stream and returns the benchmark results in
// name order. A benchmark appearing twice (e.g. from multiple packages or
// -count>1) keeps the last occurrence.
func Parse(r io.Reader) ([]Result, error) {
	byName := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			byName[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]Result, len(names))
	for i, name := range names {
		results[i] = byName[name]
	}
	return results, nil
}

// parseLine decodes one "BenchmarkX-8   123   456 ns/op   789 B/op ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
		Iterations: iters,
	}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	if res.NsPerOp == 0 && res.Metrics == nil && res.BytesPerOp == 0 {
		return Result{}, false
	}
	return res, true
}
