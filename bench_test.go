package faasmem

// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation, each regenerating its experiment at a reduced scale
// (use cmd/experiments for the paper-scale runs), plus ablation benches for
// the design choices DESIGN.md calls out: the Pucket segment policies, the
// semi-warm period, the fault pipeline depth, and the barrier/rollback
// primitives themselves.
//
// Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"
	"time"

	"github.com/faasmem/faasmem/internal/core"
	"github.com/faasmem/faasmem/internal/experiments"
	"github.com/faasmem/faasmem/internal/memnode"
	"github.com/faasmem/faasmem/internal/mglru"
	"github.com/faasmem/faasmem/internal/pagemem"
	"github.com/faasmem/faasmem/internal/rmem"
	"github.com/faasmem/faasmem/internal/sharedmem"
	"github.com/faasmem/faasmem/internal/simtime"
	"github.com/faasmem/faasmem/internal/telemetry/exemplar"
	"github.com/faasmem/faasmem/internal/telemetry/span"
	"github.com/faasmem/faasmem/internal/telemetry/timeseries"
	"github.com/faasmem/faasmem/internal/trace"
	"github.com/faasmem/faasmem/internal/workload"
)

// ---------------------------------------------------------------- figures

func BenchmarkFig1KeepAliveSweep(b *testing.B) {
	tr := trace.Generate(trace.GenConfig{NumFunctions: 100, Duration: 4 * time.Hour}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(experiments.Fig1Options{Trace: tr, Seed: 1})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig2DamonLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2(experiments.Fig2Options{
			Duration: 10 * time.Minute,
			MeanGap:  30 * time.Second,
			Benches:  []string{"json", "web"},
			Seed:     int64(i),
		})
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig4RuntimeFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig4(); len(rows) != 6 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig5RequestsPerContainer(b *testing.B) {
	tr := trace.Generate(trace.GenConfig{NumFunctions: 100, Duration: 4 * time.Hour}, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(experiments.Fig5Options{Trace: tr})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig6BertScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(experiments.Fig6Options{Requests: 10, Seed: int64(i)})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig8RuntimeRecalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(experiments.Fig8Options{Requests: 5, Seed: int64(i)})
		if len(rows) != 11 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig9WebScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(25, int64(i))
		if len(rows) != 25 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig12AzureHighLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(experiments.Fig12Options{
			Duration: 8 * time.Minute,
			Benches:  []string{"web", "json"},
			Seed:     int64(i),
		})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig12AzureLowLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(experiments.Fig12Options{
			Duration: 8 * time.Minute,
			Benches:  []string{"graph"},
			Policies: []experiments.PolicyKind{experiments.Baseline, experiments.FaaSMem},
			Seed:     int64(i),
		})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable1DiverseTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(experiments.Table1Options{
			Duration: 6 * time.Minute,
			Traces:   2,
			Seed:     int64(i),
		})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig13Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(experiments.Fig13Options{
			Duration: 8 * time.Minute,
			Seed:     int64(i),
		})
		if len(rows) != 8 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig14SemiWarmApplicability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig14(experiments.Fig14Options{
			NumFunctions: 50,
			Duration:     2 * time.Hour,
			Seed:         int64(i),
		})
		if len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig15BarrierInsert(b *testing.B) {
	prof := workload.Bert()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		space := pagemem.NewSpace(pagemem.DefaultPageSize)
		lru := mglru.New(space)
		space.AllocBytes(pagemem.SegRuntime, prof.RuntimeBytes)
		lru.InsertBarrier()
		space.AllocBytes(pagemem.SegInit, prof.InitBytes)
		lru.InsertBarrier()
	}
}

func BenchmarkFig15Rollback(b *testing.B) {
	prof := workload.Bert()
	space := pagemem.NewSpace(pagemem.DefaultPageSize)
	lru := mglru.New(space)
	space.AllocBytes(pagemem.SegRuntime, prof.RuntimeBytes)
	runtimeGen, runtimeRange := lru.InsertBarrier()
	space.AllocBytes(pagemem.SegInit, prof.InitBytes)
	initGen, initRange := lru.InsertBarrier()
	_ = runtimeGen
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Promote the hot set, then roll it back.
		hot := initRange.Start + pagemem.PageID(prof.InitHotBytes/int64(space.PageSize()))
		for id := initRange.Start; id < hot; id++ {
			space.SetState(id, pagemem.Hot)
			lru.Promote(id)
		}
		for id := initRange.Start; id < initRange.End; id++ {
			if space.State(id) == pagemem.Hot {
				space.SetState(id, pagemem.Inactive)
				lru.Demote(id, initGen)
			}
		}
	}
	_ = runtimeRange
}

func BenchmarkFig15Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig15()
		if len(rows) != 11 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig16Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig16(experiments.Fig16Options{
			Traces:   3,
			Duration: 6 * time.Minute,
			Apps:     []string{"graph", "web"},
			Seed:     int64(i),
		})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationFaultPipeline sweeps the swap path's fault pipeline depth
// — the design choice that sets how painful a semi-warm or DAMON-drained
// container's first request is.
func BenchmarkAblationFaultPipeline(b *testing.B) {
	prof := workload.Web()
	inv := experiments.HighLoadInvocations(6*time.Minute, 3)
	for i := 0; i < b.N; i++ {
		out := experiments.RunScenario(experiments.Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    6 * time.Minute,
			Policy:      experiments.DAMON,
			Seed:        3,
		})
		if out.Requests == 0 {
			b.Fatal("no requests")
		}
	}
}

// BenchmarkAblationPolicies runs the same workload under each policy so the
// relative simulation cost (and offloading work) of the policies is visible.
func BenchmarkAblationPolicies(b *testing.B) {
	prof := workload.ByName("json")
	inv := experiments.HighLoadInvocations(6*time.Minute, 4)
	for _, pk := range []experiments.PolicyKind{
		experiments.Baseline, experiments.TMO, experiments.DAMON, experiments.FaaSMem,
	} {
		b.Run(string(pk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := experiments.RunScenario(experiments.Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    6 * time.Minute,
					Policy:      pk,
					SeedHistory: true,
					Seed:        4,
				})
				if out.Requests == 0 {
					b.Fatal("no requests")
				}
			}
		})
	}
}

// ---------------------------------------------------------------- fast path

// benchRNG is a splitmix-style LCG so the engine microbenches draw the same
// delay sequence every run without importing math/rand.
type benchRNG uint64

func (r *benchRNG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// BenchmarkEngineSchedule measures the schedule+cancel path of the timer-wheel
// event engine at a steady depth of 1e5 pending events: each iteration cancels
// one in-flight event and schedules a replacement at a pseudorandom future
// time, so the wheel stays full and the free-list pool absorbs every event.
func BenchmarkEngineSchedule(b *testing.B) {
	const pending = 100_000
	e := simtime.NewEngine()
	nop := func(*simtime.Engine) {}
	rng := benchRNG(1)
	at := func() simtime.Time { return e.Now() + simtime.Time(1+rng.next()%(1<<32)) }
	handles := make([]simtime.Handle, pending)
	for i := range handles {
		handles[i] = e.At(at(), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := int(rng.next() % pending)
		e.Cancel(handles[slot])
		handles[slot] = e.At(at(), nop)
	}
	b.StopTimer()
	if e.Pending() != pending {
		b.Fatalf("pending = %d, want %d", e.Pending(), pending)
	}
}

// BenchmarkEngineTimerWheel measures steady-state firing: 1e5 self-
// rescheduling timers churn through the wheel, so every Step drains a slot,
// fires one event, and re-places it — the cascade, bitmap scan, and pool
// reuse paths all stay hot, exactly like a dense simulation mid-run.
func BenchmarkEngineTimerWheel(b *testing.B) {
	const pending = 100_000
	e := simtime.NewEngine()
	rng := benchRNG(99)
	delay := func() simtime.Time { return simtime.Time(1 + rng.next()%(1<<22)) }
	var tick simtime.Func
	tick = func(e *simtime.Engine) { e.After(delay(), tick) }
	for i := 0; i < pending; i++ {
		e.At(delay(), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("engine drained")
		}
	}
	b.StopTimer()
	if e.Pending() != pending {
		b.Fatalf("pending = %d, want %d", e.Pending(), pending)
	}
}

// BenchmarkBarrierInsert measures time-barrier insertion on the range-run
// LRU: each iteration faults in a fresh 1 MB allocation and seals it, so the
// cost per barrier stays O(1) no matter how many pages the space holds.
func BenchmarkBarrierInsert(b *testing.B) {
	space := pagemem.NewSpace(pagemem.DefaultPageSize)
	lru := mglru.New(space)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.AllocBytes(pagemem.SegInit, 1<<20)
		lru.InsertBarrier()
	}
}

// BenchmarkPucketOffloadScan measures the victim scan behind
// Pucket.OffloadInactive: collecting the inactive list of a mostly-offloaded
// Bert-sized segment. The Inactive bitset lets the scan skip the offloaded
// majority word-at-a-time.
func BenchmarkPucketOffloadScan(b *testing.B) {
	prof := workload.Bert()
	space := pagemem.NewSpace(pagemem.DefaultPageSize)
	lru := mglru.New(space)
	space.AllocBytes(pagemem.SegInit, prof.InitBytes)
	_, seg := lru.InsertBarrier()
	// Leave every 64th page inactive; the rest are already remote.
	for id := seg.Start; id < seg.End; id++ {
		if (id-seg.Start)%64 != 0 {
			space.SetState(id, pagemem.Remote)
		}
	}
	var ids []pagemem.PageID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids = space.CollectInState(ids[:0], seg, pagemem.Inactive, 0)
		if len(ids) == 0 {
			b.Fatal("no victims")
		}
	}
}

// BenchmarkHarnessParallelFanout runs the same 8-scenario grid through the
// experiment harness's worker pool at width 1 and at GOMAXPROCS, verifying
// the fan-out path and exposing its scaling on multi-core hosts.
func BenchmarkHarnessParallelFanout(b *testing.B) {
	prof := workload.ByName("json")
	inv := experiments.HighLoadInvocations(6*time.Minute, 9)
	scs := make([]experiments.Scenario, 8)
	for i := range scs {
		scs[i] = experiments.Scenario{
			Profile:     prof,
			Invocations: inv,
			Duration:    6 * time.Minute,
			Policy:      experiments.FaaSMem,
			SeedHistory: true,
			Seed:        int64(i),
		}
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		// Names avoid a trailing "-N": that's go test's GOMAXPROCS suffix,
		// which cmd/benchjson strips for cross-machine key stability.
		{"serial", 1},
		{"maxprocs", 0}, // 0 restores the GOMAXPROCS default
	} {
		b.Run(cfg.name, func(b *testing.B) {
			experiments.SetWorkers(cfg.workers)
			defer experiments.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				outs := experiments.RunScenarios(scs)
				if len(outs) != len(scs) || outs[0].Requests == 0 {
					b.Fatal("bad outcomes")
				}
			}
		})
	}
}

// BenchmarkDisabledSpans runs one scenario with span recording off (the
// default for every figure) and on: the nil-recorder fast path must keep the
// hot exec loop's cost and allocation profile indistinguishable from
// pre-span builds. internal/telemetry/span asserts the per-call zero-alloc
// contract; this gate watches the end-to-end run.
func BenchmarkDisabledSpans(b *testing.B) {
	prof := workload.ByName("json")
	inv := experiments.HighLoadInvocations(6*time.Minute, 11)
	for _, cfg := range []struct {
		name string
		rec  *span.Recorder
	}{
		{"disabled", nil},
		{"enabled", span.NewRecorder(1 << 12)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := experiments.RunScenario(experiments.Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    6 * time.Minute,
					Policy:      experiments.FaaSMem,
					CoreConfig:  core.Config{},
					SeedHistory: true,
					Seed:        11,
					Spans:       cfg.rec,
				})
				if out.Requests == 0 {
					b.Fatal("no requests")
				}
			}
		})
	}
}

// BenchmarkDisabledTimeline is BenchmarkDisabledSpans for the time-series
// recorder: with no recorder attached (every figure's default) the per-window
// sampling ticker is never armed and every hot-path hook is one nil check, so
// the run must match pre-timeline builds; the enabled case bounds what
// -timeline costs.
func BenchmarkDisabledTimeline(b *testing.B) {
	prof := workload.ByName("json")
	inv := experiments.HighLoadInvocations(6*time.Minute, 11)
	for _, cfg := range []struct {
		name string
		make func() *timeseries.Recorder
	}{
		{"disabled", func() *timeseries.Recorder { return nil }},
		{"enabled", func() *timeseries.Recorder { return timeseries.NewRecorder(timeseries.Config{}) }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := experiments.RunScenario(experiments.Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    6 * time.Minute,
					Policy:      experiments.FaaSMem,
					CoreConfig:  core.Config{},
					SeedHistory: true,
					Seed:        11,
					Timeline:    cfg.make(),
				})
				if out.Requests == 0 {
					b.Fatal("no requests")
				}
			}
		})
	}
}

// BenchmarkDisabledExemplars is BenchmarkDisabledTimeline for the
// tail-exemplar recorder: with no recorder attached the completion path pays
// one nil check and never builds span trees, so the run must match
// pre-exemplar builds; the enabled case bounds what -exemplars costs
// (bounded worst-K retention per window cell).
func BenchmarkDisabledExemplars(b *testing.B) {
	prof := workload.ByName("json")
	inv := experiments.HighLoadInvocations(6*time.Minute, 11)
	for _, cfg := range []struct {
		name string
		make func() *exemplar.Recorder
	}{
		{"disabled", func() *exemplar.Recorder { return nil }},
		{"enabled", func() *exemplar.Recorder { return exemplar.NewRecorder(exemplar.Config{}) }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := experiments.RunScenario(experiments.Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    6 * time.Minute,
					Policy:      experiments.FaaSMem,
					CoreConfig:  core.Config{},
					SeedHistory: true,
					Seed:        11,
					Exemplars:   cfg.make(),
				})
				if out.Requests == 0 {
					b.Fatal("no requests")
				}
			}
		})
	}
}

// ---------------------------------------------------------------- substrate

// BenchmarkTouchHotSet measures the page-touch hot path that dominates
// request replay (one Bert-sized hot-set touch).
func BenchmarkTouchHotSet(b *testing.B) {
	prof := workload.Bert()
	space := pagemem.NewSpace(pagemem.DefaultPageSize)
	r := space.AllocBytes(pagemem.SegInit, prof.InitHotBytes)
	b.SetBytes(prof.InitHotBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := r.Start; id < r.End; id++ {
			space.Touch(id)
		}
	}
}

// BenchmarkTraceGeneration measures synthesizing a full Azure-like day.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.Generate(trace.GenConfig{NumFunctions: 100, Duration: 6 * time.Hour}, int64(i))
		if tr.TotalInvocations() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// ---------------------------------------------------------------- extensions

// BenchmarkExtPoolComparison regenerates the §9 pool-technology study.
func BenchmarkExtPoolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.PoolComparison(experiments.PoolComparisonOptions{
			Duration: 6 * time.Minute, Seed: int64(i),
		})
		if len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkExtColdStartTiming regenerates the §8.3.2 timing-correction study.
func BenchmarkExtColdStartTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ColdStartTiming(experiments.ColdStartTimingOptions{
			Duration: 6 * time.Minute, Seed: int64(i),
		})
		if len(rows) != 4 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkExtRackDensity regenerates the measured-density rack study.
func BenchmarkExtRackDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RackDensity(experiments.RackDensityOptions{
			Nodes: 2, Functions: 6, Duration: 6 * time.Minute, Seed: int64(i),
		})
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkPoolDensity regenerates the memory-node capacity sweep: the mixed
// workload over off/dedup/dedup+zswap modes at one DRAM size.
func BenchmarkPoolDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.PoolDensity(experiments.PoolDensityOptions{
			DRAMMBs: []int{192}, Duration: 4 * time.Minute, Seed: int64(i),
		})
		if len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkSharedRegionMap measures the shared-region hot path: mapping and
// unmapping a 64 MB pool-resident region (refcount bookkeeping plus the
// demand-fetch pricing of ShareRead) without advancing virtual time.
func BenchmarkSharedRegionMap(b *testing.B) {
	e := simtime.NewEngine()
	pool := rmem.NewPool(rmem.Config{Node: &memnode.Config{}})
	m := sharedmem.New(sharedmem.Config{PageSize: 4096, Pool: pool})
	if _, _, err := m.Create(e.Now(), "r", "t", 64<<20); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Map(e.Now(), "r"); err != nil {
			b.Fatal(err)
		}
		if err := m.Unmap(e.Now(), "r"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAGPipeline runs the ETL pipeline workflow end to end with
// pool-backed state passing: four chained stages, region create/map/release
// per hop, dependency-ready scheduling through the platform.
func BenchmarkDAGPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.RunWorkflowCell(experiments.StatefulOptions{
			Runs: 2, Seed: int64(i),
		}, "pipeline", true, 0, 0)
		if row.Completed != 2 || !row.Drained {
			b.Fatalf("bad run: %+v", row)
		}
	}
}

// BenchmarkMemnodeOffload measures the page-store hot path: described
// offloads from a rotating set of containers into a node under DRAM pressure
// (dedup lookups, LRU maintenance, compression/spill demotion), then a full
// per-owner discard.
func BenchmarkMemnodeOffload(b *testing.B) {
	node := memnode.New(memnode.Config{DRAMBytes: 64 << 20, SpillBytes: 256 << 20})
	owners := make([]string, 16)
	for i := range owners {
		owners[i] = fmt.Sprintf("c%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := owners[i%len(owners)]
		node.Offload(o, "fn", memnode.ClassInit, 512)
		node.Offload(o, "fn", memnode.ClassRuntime, 1024)
		node.Offload(o, "fn", memnode.ClassExec, 256)
		if i%len(owners) == len(owners)-1 {
			for _, ow := range owners {
				node.DiscardOwner(ow)
			}
		}
	}
}

// BenchmarkMergeLookup measures the merge-domain hot path at steady state:
// dedup-hit offloads from two functions of one tenant land on the same
// tenant-wide master, and the recalls that hand the pages back are served by
// the shared cache tier. Gate: 0 allocs/op — the domain memo, the refcount
// bookkeeping, and the cache-hit path must all stay allocation-free.
func BenchmarkMergeLookup(b *testing.B) {
	node := memnode.New(memnode.Config{
		MergeScope: memnode.MergeTenant,
		TenantOf:   func(fn string) string { return fn[:1] },
		CacheBytes: 64 << 20,
	})
	fns := [2]string{"t1", "t2"} // same first-letter tenant: one merge domain
	var loopOwners [2]string
	for i, fn := range fns {
		// Anchors pin the master's size so the benchmarked recalls never
		// resize it, and a first read admits the master to the cache.
		node.Offload(fn+"#a", fn, memnode.ClassRuntime, 192)
		loopOwners[i] = fn + "#b"
		node.Offload(loopOwners[i], fn, memnode.ClassRuntime, 64)
	}
	node.ReadCost("t1#a", "t1", memnode.ClassRuntime, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn := fns[i%2]
		owner := loopOwners[i%2]
		if got := node.Offload(owner, fn, memnode.ClassRuntime, 64); got != 64 {
			b.Fatalf("offload accepted %d of 64", got)
		}
		if out := node.Recall(owner, fn, memnode.ClassRuntime, 64); out.Pages != 64 || out.Latency != 0 {
			b.Fatalf("recall = %+v, want 64 pages from cache", out)
		}
	}
	b.StopTimer()
	if node.MergedPages() == 0 {
		b.Fatal("loop never exercised the widened-domain merge path")
	}
	if err := node.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationRequestWindow compares §5.2's adaptive request-window
// against fixed windows on the Web workload: a window of 1 offloads cold
// init pages eagerly (recalling the Pareto tail), a large fixed window
// strands memory, and the adaptive detector lands between them.
func BenchmarkAblationRequestWindow(b *testing.B) {
	prof := workload.Web()
	inv := experiments.HighLoadInvocations(6*time.Minute, 7)
	for _, cfg := range []struct {
		name  string
		fixed int
	}{
		{"adaptive", 0},
		{"fixed-1", 1},
		{"fixed-20", 20},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := experiments.RunScenario(experiments.Scenario{
					Profile:     prof,
					Invocations: inv,
					Duration:    6 * time.Minute,
					Policy:      experiments.FaaSMem,
					CoreConfig:  core.Config{FixedRequestWindow: cfg.fixed, DisableSemiWarm: true},
					Seed:        7,
				})
				if out.Requests == 0 {
					b.Fatal("no requests")
				}
				b.ReportMetric(out.AvgLocalMB, "avgMB")
				b.ReportMetric(float64(out.FaultPages), "faults")
			}
		})
	}
}
